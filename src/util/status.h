#ifndef HOSR_UTIL_STATUS_H_
#define HOSR_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace hosr::util {

// Error categories, modeled after the RocksDB / Abseil status idiom: library
// code never throws; fallible operations return Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kIoError = 5,
  kInternal = 6,
  kUnimplemented = 7,
  // Transient failure: the operation may succeed if retried (a faulted
  // scoring shard, a briefly unreachable backend).
  kUnavailable = 8,
  // The request's deadline expired before (or while) the work completed.
  kDeadlineExceeded = 9,
  // Admission control rejected the request (queue full, quota spent).
  kResourceExhausted = 10,
  // Stored data failed integrity checks (CRC mismatch, torn write).
  kDataLoss = 11,
};

// Returns a stable human-readable name, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

// Value-type result of a fallible operation: a code plus a free-form message.
// Cheap to copy in the OK case (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // True for failures that a retry (with backoff) has a reasonable chance
  // of curing: Unavailable and ResourceExhausted. Deterministic failures
  // (bad input, missing data, corruption, expired deadlines) are not
  // transient — retrying them wastes the caller's latency budget.
  bool IsTransient() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kResourceExhausted;
  }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status);

// Propagates a non-OK status to the caller.
#define HOSR_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::hosr::util::Status _hosr_status = (expr);      \
    if (!_hosr_status.ok()) return _hosr_status;     \
  } while (false)

}  // namespace hosr::util

#endif  // HOSR_UTIL_STATUS_H_
