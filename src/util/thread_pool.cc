#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace hosr::util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    HOSR_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

namespace {
// Nested ParallelFor calls (e.g. GEMM invoked from inside a parallel body)
// run inline: a worker blocking in Wait() for tasks behind it in the queue
// would deadlock the pool.
thread_local bool t_inside_parallel_for = false;
}  // namespace

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& body,
                 size_t min_chunk) {
  if (end <= begin) return;
  const size_t count = end - begin;
  ThreadPool& pool = ThreadPool::Global();
  const size_t max_chunks = pool.num_threads() * 4;
  if (t_inside_parallel_for || count <= min_chunk ||
      pool.num_threads() <= 1 || max_chunks <= 1) {
    body(begin, end);
    return;
  }
  const size_t num_chunks =
      std::min(max_chunks, (count + min_chunk - 1) / min_chunk);
  const size_t chunk_size = (count + num_chunks - 1) / num_chunks;
  for (size_t chunk_begin = begin; chunk_begin < end;
       chunk_begin += chunk_size) {
    const size_t chunk_end = std::min(end, chunk_begin + chunk_size);
    pool.Submit([&body, chunk_begin, chunk_end] {
      t_inside_parallel_for = true;
      body(chunk_begin, chunk_end);
      t_inside_parallel_for = false;
    });
  }
  pool.Wait();
}

size_t GrainFor(size_t work_per_item, size_t min_grain) {
  const size_t work = std::max<size_t>(1, work_per_item);
  const size_t lo = std::max<size_t>(1, min_grain);
  const size_t hi = std::max(lo, kGrainTargetWork);
  return std::clamp(kGrainTargetWork / work, lo, hi);
}

}  // namespace hosr::util
