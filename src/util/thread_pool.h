#ifndef HOSR_UTIL_THREAD_POOL_H_
#define HOSR_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hosr::util {

// Fixed-size worker pool with a simple FIFO queue. Destruction drains the
// queue, then joins workers.
class ThreadPool {
 public:
  // num_threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Enqueues a task for execution on a worker thread.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing.
  void Wait();

  // Process-wide shared pool, sized to the hardware.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

// Splits [begin, end) into contiguous chunks and runs
// `body(chunk_begin, chunk_end)` across the pool, blocking until all chunks
// finish. Runs inline when the range is small or the pool has one thread.
// `body` must be safe to invoke concurrently on disjoint ranges.
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t, size_t)>& body,
                 size_t min_chunk = 1024);

// Roughly how much work one ParallelFor chunk should carry before the
// pool's dispatch overhead is amortized, in scalar-op units.
inline constexpr size_t kGrainTargetWork = 16 * 1024;

// The one grain-sizing heuristic for ParallelFor `min_chunk` arguments:
// items per chunk so each chunk carries about kGrainTargetWork ops, where
// `work_per_item` is the per-item cost in scalar-op units (e.g. nnz * d for
// an SpMM row). Clamped to [min_grain, max(min_grain, kGrainTargetWork)];
// zero work_per_item is treated as 1.
size_t GrainFor(size_t work_per_item, size_t min_grain = 1);

}  // namespace hosr::util

#endif  // HOSR_UTIL_THREAD_POOL_H_
