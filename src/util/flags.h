#ifndef HOSR_UTIL_FLAGS_H_
#define HOSR_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace hosr::util {

// Minimal command-line parsing for benches and examples.
// Accepted forms: --name=value, --name value, and bare --name (value "true").
// Positional arguments are collected separately.
class Flags {
 public:
  Flags() = default;

  // Parses argv[1..argc). Unknown flags are accepted (callers query by name).
  static Flags Parse(int argc, char** argv);

  bool Has(std::string_view name) const;

  // Typed getters returning `default_value` when absent. Malformed values
  // log a warning and return the default.
  std::string GetString(std::string_view name,
                        std::string default_value) const;
  int64_t GetInt(std::string_view name, int64_t default_value) const;
  double GetDouble(std::string_view name, double default_value) const;
  bool GetBool(std::string_view name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

}  // namespace hosr::util

#endif  // HOSR_UTIL_FLAGS_H_
