#include "util/status.h"

namespace hosr::util {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace hosr::util
