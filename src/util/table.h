#ifndef HOSR_UTIL_TABLE_H_
#define HOSR_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace hosr::util {

// Builds a table of string cells and renders it either as an aligned text
// table (for console output of paper tables) or as CSV (for plotting).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string Cell(double value, int precision = 4);

  size_t num_rows() const { return rows_.size(); }
  size_t num_cols() const { return header_.size(); }

  // Renders an aligned, pipe-separated table.
  std::string ToText() const;

  // Renders RFC-4180-ish CSV (fields containing comma/quote are quoted).
  std::string ToCsv() const;

  // Writes CSV to a file.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hosr::util

#endif  // HOSR_UTIL_TABLE_H_
