#ifndef HOSR_UTIL_RANDOM_H_
#define HOSR_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hosr::util {

// Complete serializable state of an Rng: the xoshiro words plus the cached
// Box-Muller spare, so a restored stream continues bit-identically.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool has_spare_gaussian = false;
  float spare_gaussian = 0.0f;
};

inline bool operator==(const RngState& a, const RngState& b) {
  return a.s[0] == b.s[0] && a.s[1] == b.s[1] && a.s[2] == b.s[2] &&
         a.s[3] == b.s[3] && a.has_spare_gaussian == b.has_spare_gaussian &&
         a.spare_gaussian == b.spare_gaussian;
}

// Deterministic, fast PRNG (xoshiro256**) with convenience distributions.
// Every stochastic component in the library takes one of these (or a seed)
// explicitly so experiments are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Movable and copyable: copying forks the stream deterministically.
  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  // Uniform over all 64-bit values.
  uint64_t NextUint64();

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t UniformInt(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  // Uniform float in [0, 1).
  float UniformFloat();

  // Uniform double in [0, 1).
  double UniformDouble();

  // Standard normal via Box-Muller.
  float Gaussian();
  // Normal with the given mean and standard deviation.
  float Gaussian(float mean, float stddev);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  // k distinct values sampled uniformly from [0, n) without replacement.
  // Requires k <= n. O(k) expected time for k << n, O(n) worst case.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

  // Forks an independent stream; deterministic function of this stream's
  // current state and `salt`.
  Rng Fork(uint64_t salt);

  // Captures / restores the full stream state (checkpoint support). A
  // restored Rng produces the exact sequence the captured one would have.
  RngState GetState() const;
  void SetState(const RngState& state);

 private:
  uint64_t state_[4];
  // Box-Muller produces pairs; cache the spare value.
  bool has_spare_gaussian_ = false;
  float spare_gaussian_ = 0.0f;
};

}  // namespace hosr::util

#endif  // HOSR_UTIL_RANDOM_H_
