#ifndef HOSR_UTIL_CRC32_H_
#define HOSR_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hosr::util {

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected, init/final 0xFFFFFFFF)
// — the zlib/gzip checksum. Guards on-disk artifacts (checkpoints, snapshots)
// against torn writes and bit rot; not a cryptographic integrity check.
uint32_t Crc32(const void* data, size_t size);
inline uint32_t Crc32(std::string_view bytes) {
  return Crc32(bytes.data(), bytes.size());
}

// Incremental form: pass the previous return value as `crc` (start with 0).
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

}  // namespace hosr::util

#endif  // HOSR_UTIL_CRC32_H_
