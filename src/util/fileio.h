#ifndef HOSR_UTIL_FILEIO_H_
#define HOSR_UTIL_FILEIO_H_

#include <fstream>
#include <string>
#include <string_view>

#include "util/statusor.h"

namespace hosr::util {

// Crash-safe file writer: streams into `<path>.tmp.<pid>` and renames onto
// `path` only in Commit(), so readers never observe a torn file — they see
// either the previous complete artifact or the new one. A destructor without
// Commit() (early return, exception, injected fault) removes the temp file.
//
//   AtomicWriteFile file(path);
//   HOSR_RETURN_IF_ERROR(file.status());
//   file.stream() << ...;
//   HOSR_RETURN_IF_ERROR(file.Commit());
class AtomicWriteFile {
 public:
  explicit AtomicWriteFile(std::string path,
                           std::ios::openmode mode = std::ios::binary);
  ~AtomicWriteFile();

  AtomicWriteFile(const AtomicWriteFile&) = delete;
  AtomicWriteFile& operator=(const AtomicWriteFile&) = delete;

  // Non-OK when the temp file could not be opened; stream() is then invalid.
  const Status& status() const { return status_; }
  std::ostream& stream() { return out_; }

  // Flushes, closes, and renames the temp file onto the target path.
  // After Commit() (success or failure) the writer is inert.
  Status Commit();

  // Closes and deletes the temp file without touching the target
  // (also what destruction without Commit() does).
  void Abort();

 private:
  std::string path_;
  std::string tmp_path_;
  std::ofstream out_;
  Status status_;
  bool done_ = false;
};

// Writes `contents` to `path` atomically (temp file + rename).
Status WriteFileAtomic(const std::string& path, std::string_view contents);

// Atomically writes `body` followed by a 4-byte little-endian CRC-32 footer
// covering every body byte. The companion reader for binary artifacts that
// must never be silently loaded after corruption.
Status WriteFileAtomicWithCrc(const std::string& path, std::string_view body);

// Reads a file written by WriteFileAtomicWithCrc: verifies the CRC footer
// and returns the body without it. Corruption (any flipped bit, truncation,
// trailing garbage) yields DataLoss; a missing file yields IoError.
StatusOr<std::string> ReadFileVerifyCrc(const std::string& path);

// Whole-file read, no integrity check.
StatusOr<std::string> ReadFileToString(const std::string& path);

}  // namespace hosr::util

#endif  // HOSR_UTIL_FILEIO_H_
