#include "util/crc32.h"

#include <array>

namespace hosr::util {

namespace {

// Table generated at first use; 256 entries of the reflected polynomial.
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  const auto& table = Crc32Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const void* data, size_t size) {
  return Crc32Update(0, data, size);
}

}  // namespace hosr::util
