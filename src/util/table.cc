#include "util/table.h"

#include <algorithm>
#include <fstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace hosr::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  HOSR_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> row) {
  HOSR_CHECK(row.size() == header_.size())
      << "row has " << row.size() << " cells, header has " << header_.size();
  rows_.push_back(std::move(row));
}

std::string Table::Cell(double value, int precision) {
  return StrFormat("%.*f", precision, value);
}

std::string Table::ToText() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string separator = "|";
  for (const size_t w : widths) separator += std::string(w + 2, '-') + "|";
  separator += "\n";

  std::string out = render_row(header_);
  out += separator;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

namespace {
std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::ToCsv() const {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += CsvEscape(row[c]);
    }
    out += '\n';
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << ToCsv();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace hosr::util
