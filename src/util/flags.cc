#include "util/flags.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace hosr::util {

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!StartsWith(arg, "--")) {
      flags.positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags.values_[std::string(arg.substr(0, eq))] =
          std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      flags.values_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      flags.values_[std::string(arg)] = "true";
    }
  }
  return flags;
}

bool Flags::Has(std::string_view name) const {
  return values_.find(name) != values_.end();
}

std::string Flags::GetString(std::string_view name,
                             std::string default_value) const {
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(std::string_view name, int64_t default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const auto parsed = ParseInt(it->second);
  if (!parsed.ok()) {
    // Name the offending flag explicitly — with several flags set, a
    // value-only warning is easy to misattribute.
    HOSR_LOG(Warning) << "flag --" << name << ": value \"" << it->second
                      << "\" is not an integer; using default "
                      << default_value;
    return default_value;
  }
  return parsed.value();
}

double Flags::GetDouble(std::string_view name, double default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const auto parsed = ParseDouble(it->second);
  if (!parsed.ok()) {
    HOSR_LOG(Warning) << "flag --" << name << ": value \"" << it->second
                      << "\" is not a number; using default "
                      << default_value;
    return default_value;
  }
  return parsed.value();
}

bool Flags::GetBool(std::string_view name, bool default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  HOSR_LOG(Warning) << "flag --" << name << ": value \"" << v
                    << "\" is not a boolean; using default "
                    << (default_value ? "true" : "false");
  return default_value;
}

}  // namespace hosr::util
