#include "util/fileio.h"

#include <cstdio>
#include <sstream>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "util/crc32.h"

namespace hosr::util {

namespace {

int ProcessId() {
#ifdef _WIN32
  return _getpid();
#else
  return static_cast<int>(getpid());
#endif
}

}  // namespace

AtomicWriteFile::AtomicWriteFile(std::string path, std::ios::openmode mode)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp." + std::to_string(ProcessId())) {
  out_.open(tmp_path_, mode | std::ios::trunc);
  if (!out_) {
    status_ = Status::IoError("cannot open for writing: " + tmp_path_);
    done_ = true;
  }
}

AtomicWriteFile::~AtomicWriteFile() { Abort(); }

Status AtomicWriteFile::Commit() {
  if (done_) return status_;
  done_ = true;
  out_.flush();
  if (!out_) {
    status_ = Status::IoError("write failed: " + tmp_path_);
  }
  out_.close();
  if (!status_.ok()) {
    std::remove(tmp_path_.c_str());
    return status_;
  }
  // rename(2) replaces the target atomically on POSIX filesystems.
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    status_ = Status::IoError("cannot rename " + tmp_path_ + " -> " + path_);
  }
  return status_;
}

void AtomicWriteFile::Abort() {
  if (done_) return;
  done_ = true;
  out_.close();
  std::remove(tmp_path_.c_str());
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  AtomicWriteFile file(path);
  HOSR_RETURN_IF_ERROR(file.status());
  file.stream().write(contents.data(),
                      static_cast<std::streamsize>(contents.size()));
  return file.Commit();
}

Status WriteFileAtomicWithCrc(const std::string& path,
                              std::string_view body) {
  const uint32_t crc = Crc32(body);
  unsigned char footer[4] = {
      static_cast<unsigned char>(crc & 0xFFu),
      static_cast<unsigned char>((crc >> 8) & 0xFFu),
      static_cast<unsigned char>((crc >> 16) & 0xFFu),
      static_cast<unsigned char>((crc >> 24) & 0xFFu),
  };
  AtomicWriteFile file(path);
  HOSR_RETURN_IF_ERROR(file.status());
  file.stream().write(body.data(), static_cast<std::streamsize>(body.size()));
  file.stream().write(reinterpret_cast<const char*>(footer), 4);
  return file.Commit();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return std::move(buffer).str();
}

StatusOr<std::string> ReadFileVerifyCrc(const std::string& path) {
  HOSR_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  if (bytes.size() < 4) {
    return Status::DataLoss("file too short for CRC footer: " + path);
  }
  const auto* footer =
      reinterpret_cast<const unsigned char*>(bytes.data() + bytes.size() - 4);
  const uint32_t stored = static_cast<uint32_t>(footer[0]) |
                          (static_cast<uint32_t>(footer[1]) << 8) |
                          (static_cast<uint32_t>(footer[2]) << 16) |
                          (static_cast<uint32_t>(footer[3]) << 24);
  bytes.resize(bytes.size() - 4);
  const uint32_t actual = Crc32(bytes);
  if (stored != actual) {
    return Status::DataLoss("CRC mismatch in " + path +
                            " (file corrupt or torn)");
  }
  return bytes;
}

}  // namespace hosr::util
