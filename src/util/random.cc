#include "util/random.h"

#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace hosr::util {

namespace {

// SplitMix64: seeds the xoshiro state from a single 64-bit value.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

RngState Rng::GetState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = state_[i];
  state.has_spare_gaussian = has_spare_gaussian_;
  state.spare_gaussian = spare_gaussian_;
  return state;
}

void Rng::SetState(const RngState& state) {
  HOSR_CHECK((state.s[0] | state.s[1] | state.s[2] | state.s[3]) != 0)
      << "all-zero xoshiro state is invalid";
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  has_spare_gaussian_ = state.has_spare_gaussian;
  spare_gaussian_ = state.spare_gaussian;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  HOSR_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  HOSR_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

float Rng::UniformFloat() {
  return static_cast<float>(NextUint64() >> 40) * 0x1.0p-24f;
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

float Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  // Box-Muller; avoid log(0) by nudging u1 away from zero.
  double u1 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = static_cast<float>(r * std::sin(theta));
  has_spare_gaussian_ = true;
  return static_cast<float>(r * std::cos(theta));
}

float Rng::Gaussian(float mean, float stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  HOSR_CHECK(k <= n);
  std::vector<uint32_t> result;
  result.reserve(k);
  if (k == 0) return result;
  if (k * 2 >= n) {
    // Dense case: partial Fisher-Yates over an explicit index array.
    std::vector<uint32_t> indices(n);
    for (uint32_t i = 0; i < n; ++i) indices[i] = i;
    for (uint32_t i = 0; i < k; ++i) {
      const uint32_t j =
          i + static_cast<uint32_t>(UniformInt(static_cast<uint64_t>(n - i)));
      std::swap(indices[i], indices[j]);
      result.push_back(indices[i]);
    }
    return result;
  }
  // Sparse case: rejection with a hash set.
  std::unordered_set<uint32_t> seen;
  seen.reserve(k * 2);
  while (result.size() < k) {
    const auto candidate = static_cast<uint32_t>(UniformInt(n));
    if (seen.insert(candidate).second) result.push_back(candidate);
  }
  return result;
}

Rng Rng::Fork(uint64_t salt) {
  return Rng(NextUint64() ^ (salt * 0x9e3779b97f4a7c15ULL));
}

}  // namespace hosr::util
