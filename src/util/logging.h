#ifndef HOSR_UTIL_LOGGING_H_
#define HOSR_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace hosr::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Minimum level actually emitted; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

// Accumulates one log line and flushes it (with timestamp and level tag) on
// destruction. Created only via the HOSR_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Like LogMessage but aborts the process after flushing. Used by HOSR_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Lets HOSR_CHECK be used as a statement of type void in ternary position.
struct FatalVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging

#define HOSR_LOG(level)                                          \
  ::hosr::util::internal_logging::LogMessage(                    \
      ::hosr::util::LogLevel::k##level, __FILE__, __LINE__)      \
      .stream()

// Fatal assertion for internal invariants (not for user-input validation —
// use Status for that). Streams extra context: HOSR_CHECK(x > 0) << "x=" << x;
#define HOSR_CHECK(condition)                                        \
  (condition) ? (void)0                                              \
              : ::hosr::util::internal_logging::FatalVoidify() &     \
                    ::hosr::util::internal_logging::FatalLogMessage( \
                        __FILE__, __LINE__, #condition)              \
                        .stream()

}  // namespace hosr::util

#endif  // HOSR_UTIL_LOGGING_H_
