#ifndef HOSR_UTIL_STATUSOR_H_
#define HOSR_UTIL_STATUSOR_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace hosr::util {

// Holds either a value of type T or a non-OK Status explaining why the value
// is absent. Accessing the value of a non-OK StatusOr aborts the process
// (programming error), mirroring absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work
  // inside functions returning StatusOr<T>.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    HOSR_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    HOSR_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    HOSR_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    HOSR_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Assigns the value of a StatusOr expression to `lhs`, or propagates its
// error status to the caller.
#define HOSR_ASSIGN_OR_RETURN(lhs, expr)            \
  HOSR_ASSIGN_OR_RETURN_IMPL_(                      \
      HOSR_STATUS_CONCAT_(_hosr_statusor, __LINE__), lhs, expr)

#define HOSR_STATUS_CONCAT_INNER_(a, b) a##b
#define HOSR_STATUS_CONCAT_(a, b) HOSR_STATUS_CONCAT_INNER_(a, b)
#define HOSR_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace hosr::util

#endif  // HOSR_UTIL_STATUSOR_H_
