#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "eval/topk.h"

namespace hosr::eval {

namespace {

bool IsRelevant(const std::vector<uint32_t>& relevant, uint32_t item) {
  return std::binary_search(relevant.begin(), relevant.end(), item);
}

}  // namespace

double RecallAtK(const std::vector<uint32_t>& ranked,
                 const std::vector<uint32_t>& relevant) {
  if (relevant.empty()) return 0.0;
  size_t hits = 0;
  for (const uint32_t item : ranked) {
    if (IsRelevant(relevant, item)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(relevant.size());
}

double PrecisionAtK(const std::vector<uint32_t>& ranked,
                    const std::vector<uint32_t>& relevant, uint32_t k) {
  if (relevant.empty() || k == 0) return 0.0;
  size_t hits = 0;
  for (size_t pos = 0; pos < ranked.size() && pos < k; ++pos) {
    if (IsRelevant(relevant, ranked[pos])) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double AveragePrecisionAtK(const std::vector<uint32_t>& ranked,
                           const std::vector<uint32_t>& relevant, uint32_t k) {
  if (relevant.empty() || k == 0) return 0.0;
  size_t hits = 0;
  double sum_precision = 0.0;
  for (size_t pos = 0; pos < ranked.size() && pos < k; ++pos) {
    if (IsRelevant(relevant, ranked[pos])) {
      ++hits;
      sum_precision +=
          static_cast<double>(hits) / static_cast<double>(pos + 1);
    }
  }
  const auto denom = static_cast<double>(
      std::min<size_t>(relevant.size(), k));
  return sum_precision / denom;
}

double NdcgAtK(const std::vector<uint32_t>& ranked,
               const std::vector<uint32_t>& relevant, uint32_t k) {
  if (relevant.empty() || k == 0) return 0.0;
  double dcg = 0.0;
  for (size_t pos = 0; pos < ranked.size() && pos < k; ++pos) {
    if (IsRelevant(relevant, ranked[pos])) {
      dcg += 1.0 / std::log2(static_cast<double>(pos) + 2.0);
    }
  }
  double ideal = 0.0;
  const size_t ideal_hits = std::min<size_t>(relevant.size(), k);
  for (size_t pos = 0; pos < ideal_hits; ++pos) {
    ideal += 1.0 / std::log2(static_cast<double>(pos) + 2.0);
  }
  return ideal > 0.0 ? dcg / ideal : 0.0;
}

double ReciprocalRankAtK(const std::vector<uint32_t>& ranked,
                         const std::vector<uint32_t>& relevant, uint32_t k) {
  if (relevant.empty() || k == 0) return 0.0;
  for (size_t pos = 0; pos < ranked.size() && pos < k; ++pos) {
    if (IsRelevant(relevant, ranked[pos])) {
      return 1.0 / static_cast<double>(pos + 1);
    }
  }
  return 0.0;
}

double HitRateAtK(const std::vector<uint32_t>& ranked,
                  const std::vector<uint32_t>& relevant, uint32_t k) {
  return ReciprocalRankAtK(ranked, relevant, k) > 0.0 ? 1.0 : 0.0;
}

std::vector<uint32_t> TopKExcluding(const float* scores, uint32_t num_items,
                                    uint32_t k,
                                    const std::vector<uint32_t>& excluded) {
  return TopK(scores, num_items, k, excluded);
}

}  // namespace hosr::eval
