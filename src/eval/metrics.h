#ifndef HOSR_EVAL_METRICS_H_
#define HOSR_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace hosr::eval {

// Ranking metrics over a single user's top-K recommendation list.
// `ranked` is the recommendation list in rank order (best first, length
// <= K); `relevant` is the user's held-out positive item set, sorted
// ascending. All metrics return 0 when `relevant` is empty.

// |top-K ∩ relevant| / |relevant|  (the paper's Recall@K).
double RecallAtK(const std::vector<uint32_t>& ranked,
                 const std::vector<uint32_t>& relevant);

// |top-K ∩ relevant| / K.
double PrecisionAtK(const std::vector<uint32_t>& ranked,
                    const std::vector<uint32_t>& relevant, uint32_t k);

// Average precision at K: mean over hit positions of precision-at-that-
// position, normalized by min(|relevant|, K). Averaging this over users
// yields the paper's MAP@K.
double AveragePrecisionAtK(const std::vector<uint32_t>& ranked,
                           const std::vector<uint32_t>& relevant, uint32_t k);

// Normalized discounted cumulative gain at K with binary relevance.
double NdcgAtK(const std::vector<uint32_t>& ranked,
               const std::vector<uint32_t>& relevant, uint32_t k);

// Reciprocal rank of the first relevant item within the top K (0 if none).
double ReciprocalRankAtK(const std::vector<uint32_t>& ranked,
                         const std::vector<uint32_t>& relevant, uint32_t k);

// 1 if any relevant item appears in the top K, else 0.
double HitRateAtK(const std::vector<uint32_t>& ranked,
                  const std::vector<uint32_t>& relevant, uint32_t k);

// Indices of the K largest scores, excluding `excluded` (sorted ascending;
// typically the user's training items). Ties broken by lower index.
// Thin wrapper over eval::TopK (eval/topk.h), kept for existing callers.
std::vector<uint32_t> TopKExcluding(const float* scores, uint32_t num_items,
                                    uint32_t k,
                                    const std::vector<uint32_t>& excluded);

}  // namespace hosr::eval

#endif  // HOSR_EVAL_METRICS_H_
