#include "eval/evaluator.h"

#include <algorithm>
#include <numeric>

#include "eval/metrics.h"
#include "eval/topk.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace hosr::eval {

Evaluator::Evaluator(const data::InteractionMatrix* train,
                     const data::InteractionMatrix* test, uint32_t k)
    : train_(train), test_(test), k_(k) {
  HOSR_CHECK(train != nullptr && test != nullptr);
  HOSR_CHECK(train->num_users() == test->num_users());
  HOSR_CHECK(train->num_items() == test->num_items());
  HOSR_CHECK(k > 0);
}

EvalResult Evaluator::Evaluate(const BatchScorer& scorer) const {
  std::vector<uint32_t> users(train_->num_users());
  std::iota(users.begin(), users.end(), 0);
  return EvaluateUsers(scorer, users);
}

EvalResult Evaluator::EvaluateUsers(const BatchScorer& scorer,
                                    const std::vector<uint32_t>& users) const {
  HOSR_TRACE_SPAN("eval/evaluate_users");
  EvalResult result;
  std::vector<uint32_t> eligible;
  for (const uint32_t u : users) {
    if (!test_->ItemsOf(u).empty()) eligible.push_back(u);
  }
  result.users = eligible;
  result.num_users = eligible.size();
  if (eligible.empty()) return result;

  result.per_user_recall.resize(eligible.size());
  result.per_user_ap.resize(eligible.size());
  double sum_recall = 0.0, sum_ap = 0.0, sum_prec = 0.0, sum_ndcg = 0.0;

  // Score in batches to bound memory: a (B x m) score block per batch.
  constexpr size_t kBatch = 512;
  for (size_t begin = 0; begin < eligible.size(); begin += kBatch) {
    const size_t end = std::min(eligible.size(), begin + kBatch);
    const std::vector<uint32_t> batch(eligible.begin() + begin,
                                      eligible.begin() + end);
    const tensor::Matrix scores = [&] {
      HOSR_TRACE_SPAN("eval/score_batch");
      return scorer(batch);
    }();
    HOSR_CHECK(scores.rows() == batch.size() &&
               scores.cols() == train_->num_items())
        << "scorer returned " << scores.rows() << "x" << scores.cols();
    auto& rank_latency = HOSR_HISTOGRAM("eval/user_rank_latency_ms");
    for (size_t b = 0; b < batch.size(); ++b) {
      const uint32_t u = batch[b];
      const util::WallTimer rank_timer;
      const auto ranked =
          TopK(scores.row(b), train_->num_items(), k_, train_->ItemsOf(u));
      rank_latency.Observe(rank_timer.ElapsedMillis());
      const auto& relevant = test_->ItemsOf(u);
      const double recall = RecallAtK(ranked, relevant);
      const double ap = AveragePrecisionAtK(ranked, relevant, k_);
      result.per_user_recall[begin + b] = recall;
      result.per_user_ap[begin + b] = ap;
      sum_recall += recall;
      sum_ap += ap;
      sum_prec += PrecisionAtK(ranked, relevant, k_);
      sum_ndcg += NdcgAtK(ranked, relevant, k_);
    }
  }
  const auto n = static_cast<double>(eligible.size());
  result.recall = sum_recall / n;
  result.map = sum_ap / n;
  result.precision = sum_prec / n;
  result.ndcg = sum_ndcg / n;
  return result;
}

std::string SparsityGroup::Label() const {
  if (min_interactions == 0) {
    return util::StrFormat("<=%u", max_interactions);
  }
  return util::StrFormat("%u-%u", min_interactions, max_interactions);
}

std::vector<SparsityGroup> BuildSparsityGroups(
    const data::InteractionMatrix& train, const data::InteractionMatrix& test,
    uint32_t num_groups) {
  HOSR_CHECK(num_groups >= 1);
  // Test users sorted by ascending training interaction count.
  std::vector<std::pair<uint32_t, uint32_t>> by_count;  // (count, user)
  uint64_t total = 0;
  for (uint32_t u = 0; u < train.num_users(); ++u) {
    if (test.ItemsOf(u).empty()) continue;
    const auto count = static_cast<uint32_t>(train.ItemsOf(u).size());
    by_count.emplace_back(count, u);
    total += count;
  }
  std::sort(by_count.begin(), by_count.end());

  std::vector<SparsityGroup> groups;
  if (by_count.empty()) return groups;
  const double per_group =
      static_cast<double>(total) / static_cast<double>(num_groups);

  SparsityGroup current;
  current.min_interactions = 0;  // first group labeled "<=max"
  uint64_t accumulated = 0;
  double boundary = per_group;
  for (size_t i = 0; i < by_count.size(); ++i) {
    const auto [count, user] = by_count[i];
    current.users.push_back(user);
    current.max_interactions = count;
    accumulated += count;
    const bool last_user = (i + 1 == by_count.size());
    // Close the group at an interaction-count boundary so equal counts
    // never straddle groups.
    const bool boundary_reached =
        static_cast<double>(accumulated) >= boundary &&
        groups.size() + 1 < num_groups &&
        (last_user || by_count[i + 1].first != count);
    if (boundary_reached || last_user) {
      groups.push_back(std::move(current));
      current = SparsityGroup();
      if (!last_user) {
        current.min_interactions = by_count[i + 1].first;
      }
      boundary += per_group;
    }
  }
  return groups;
}

}  // namespace hosr::eval
