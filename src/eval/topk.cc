#include "eval/topk.h"

#include "kernels/kernels.h"
#include "util/logging.h"

namespace hosr::eval {

TopKAccumulator::TopKAccumulator(uint32_t k) : k_(k) {
  HOSR_CHECK(k > 0);
  heap_.reserve(k + 1);
}

void TopKAccumulator::ConsiderSlow(float score, uint32_t index) {
  const Entry entry{score, index};
  if (heap_.size() < k_) {
    heap_.push_back(entry);
    std::push_heap(heap_.begin(), heap_.end(), Better);
  } else {
    // Consider() only forwards candidates that beat the current worst.
    std::pop_heap(heap_.begin(), heap_.end(), Better);
    heap_.back() = entry;
    std::push_heap(heap_.begin(), heap_.end(), Better);
  }
}

std::vector<uint32_t> TopKAccumulator::Take() {
  std::sort_heap(heap_.begin(), heap_.end(), Better);
  std::vector<uint32_t> result;
  result.reserve(heap_.size());
  for (const Entry& e : heap_) result.push_back(e.second);
  heap_.clear();
  return result;
}

std::vector<uint32_t> TopK(const float* scores, uint32_t num_items, uint32_t k,
                           const std::vector<uint32_t>& excluded) {
  TopKAccumulator acc(k);
  const kernels::KernelTable& kern = kernels::Active();
  auto excluded_it = excluded.begin();
  // Scan in blocks: once the heap is full, a SIMD max over the block
  // rejects it wholesale when even its best score cannot enter the top-K.
  // The max includes excluded items, which only makes the check
  // conservative — a surviving block still filters per item below.
  constexpr uint32_t kBlock = 4096;
  for (uint32_t j0 = 0; j0 < num_items; j0 += kBlock) {
    const uint32_t j1 = std::min(num_items, j0 + kBlock);
    if (acc.Full() && !acc.WouldAccept(kern.reduce_max(j1 - j0, scores + j0))) {
      continue;
    }
    for (uint32_t j = j0; j < j1; ++j) {
      while (excluded_it != excluded.end() && *excluded_it < j) ++excluded_it;
      if (excluded_it != excluded.end() && *excluded_it == j) continue;
      acc.Consider(scores[j], j);
    }
  }
  return acc.Take();
}

}  // namespace hosr::eval
