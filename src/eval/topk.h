#ifndef HOSR_EVAL_TOPK_H_
#define HOSR_EVAL_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace hosr::eval {

// Incremental best-K selector over (score, index) candidates, shared by the
// offline evaluator and the serving engine so both rank identically: higher
// score wins, ties broken by lower index. Candidates may be fed in any order
// and in multiple passes (e.g. per item block); memory is O(K).
class TopKAccumulator {
 public:
  explicit TopKAccumulator(uint32_t k);

  // Offers one candidate; O(log K) when it displaces the current worst.
  void Consider(float score, uint32_t index) {
    const Entry entry{score, index};
    if (heap_.size() < k_) {
      heap_.push_back(entry);
      std::push_heap(heap_.begin(), heap_.end(), Better);
    } else if (!heap_.empty() && Better(entry, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), Better);
      heap_.back() = entry;
      std::push_heap(heap_.begin(), heap_.end(), Better);
    }
  }

  // Extracts the selected indices, best first, leaving the accumulator
  // empty and ready for reuse with the same K.
  std::vector<uint32_t> Take();

  uint32_t k() const { return k_; }

 private:
  using Entry = std::pair<float, uint32_t>;  // (score, item index)

  // True when `a` ranks strictly ahead of `b`.
  static bool Better(const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  }

  uint32_t k_;
  std::vector<Entry> heap_;  // min-heap of the best K seen so far
};

// Indices of the K largest scores, excluding `excluded` (sorted ascending;
// typically the user's already-consumed items). Ties broken by lower index.
std::vector<uint32_t> TopK(const float* scores, uint32_t num_items, uint32_t k,
                           const std::vector<uint32_t>& excluded);

}  // namespace hosr::eval

#endif  // HOSR_EVAL_TOPK_H_
