#ifndef HOSR_EVAL_TOPK_H_
#define HOSR_EVAL_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace hosr::eval {

// Incremental best-K selector over (score, index) candidates, shared by the
// offline evaluator and the serving engine so both rank identically: higher
// score wins, ties broken by lower index. Candidates may be fed in any order
// and in multiple passes (e.g. per item block); memory is O(K).
class TopKAccumulator {
 public:
  explicit TopKAccumulator(uint32_t k);

  // Offers one candidate; O(log K) when it displaces the current worst.
  // The steady-state reject — heap already full, candidate no better than
  // the current worst — is one compare, kept inline so scan loops pay a
  // couple of instructions per losing item; heap surgery lives in topk.cc.
  void Consider(float score, uint32_t index) {
    if (heap_.size() >= k_ && !Better(Entry{score, index}, heap_.front())) {
      return;
    }
    ConsiderSlow(score, index);
  }

  // Extracts the selected indices, best first, leaving the accumulator
  // empty and ready for reuse with the same K.
  std::vector<uint32_t> Take();

  // True once K candidates are held (a new candidate must displace one).
  bool Full() const { return heap_.size() >= k_; }

  // True when a candidate with this score could still enter the top-K:
  // either the heap has room, or the score ties/beats the current worst
  // (ties can win on the lower-index rule). Block scans use this with the
  // block's max score to reject whole blocks without per-item compares.
  bool WouldAccept(float score) const {
    return heap_.size() < k_ || score >= heap_.front().first;
  }

  uint32_t k() const { return k_; }

 private:
  using Entry = std::pair<float, uint32_t>;  // (score, item index)

  // Inserts a candidate that either grows the heap or displaces the worst.
  void ConsiderSlow(float score, uint32_t index);

  // True when `a` ranks strictly ahead of `b`.
  static bool Better(const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  }

  uint32_t k_;
  std::vector<Entry> heap_;  // min-heap of the best K seen so far
};

// Indices of the K largest scores, excluding `excluded` (sorted ascending;
// typically the user's already-consumed items). Ties broken by lower index.
std::vector<uint32_t> TopK(const float* scores, uint32_t num_items, uint32_t k,
                           const std::vector<uint32_t>& excluded);

}  // namespace hosr::eval

#endif  // HOSR_EVAL_TOPK_H_
