#include "eval/significance.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace hosr::eval {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (const double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mean = Mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - mean) * (x - mean);
  return acc / static_cast<double>(xs.size() - 1);
}

namespace {

// Lentz's continued fraction for the incomplete beta (Numerical Recipes).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEps = 3e-14;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  HOSR_CHECK(a > 0.0 && b > 0.0);
  HOSR_CHECK(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  // Use the symmetry transformation for faster convergence.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTTwoSidedPValue(double t, double df) {
  if (df <= 0.0) return 1.0;
  if (!std::isfinite(t)) return 0.0;
  const double x = df / (df + t * t);
  return RegularizedIncompleteBeta(df / 2.0, 0.5, x);
}

TTestResult PairedTTest(const std::vector<double>& a,
                        const std::vector<double>& b) {
  TTestResult result;
  HOSR_CHECK(a.size() == b.size())
      << "paired t-test needs matched samples: " << a.size() << " vs "
      << b.size();
  const size_t n = a.size();
  if (n < 2) return result;
  std::vector<double> diff(n);
  for (size_t i = 0; i < n; ++i) diff[i] = a[i] - b[i];
  const double mean_diff = Mean(diff);
  const double var_diff = Variance(diff);
  result.mean_difference = mean_diff;
  result.degrees_of_freedom = static_cast<double>(n - 1);
  if (var_diff <= 0.0) {
    result.p_value = mean_diff == 0.0 ? 1.0 : 0.0;
    result.t_statistic =
        mean_diff == 0.0
            ? 0.0
            : std::numeric_limits<double>::infinity() * (mean_diff > 0 ? 1 : -1);
    return result;
  }
  result.t_statistic =
      mean_diff / std::sqrt(var_diff / static_cast<double>(n));
  result.p_value =
      StudentTTwoSidedPValue(result.t_statistic, result.degrees_of_freedom);
  return result;
}

}  // namespace hosr::eval
