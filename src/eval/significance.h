#ifndef HOSR_EVAL_SIGNIFICANCE_H_
#define HOSR_EVAL_SIGNIFICANCE_H_

#include <vector>

namespace hosr::eval {

// Result of a two-sided paired t-test.
struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value = 1.0;
  double mean_difference = 0.0;
};

// Two-sided paired t-test over matched samples (e.g. per-user Recall@20 of
// two models over the same users) — the source of Table 3's p-values.
// Returns p = 1 when fewer than 2 pairs or zero variance of differences.
TTestResult PairedTTest(const std::vector<double>& a,
                        const std::vector<double>& b);

// Regularized incomplete beta function I_x(a, b) via continued fractions;
// exposed for testing. Domain: a, b > 0, x in [0, 1].
double RegularizedIncompleteBeta(double a, double b, double x);

// P(|T| > |t|) for Student's t with `df` degrees of freedom.
double StudentTTwoSidedPValue(double t, double df);

// Descriptive helpers used across benches.
double Mean(const std::vector<double>& xs);
double Variance(const std::vector<double>& xs);  // sample variance (n-1)

}  // namespace hosr::eval

#endif  // HOSR_EVAL_SIGNIFICANCE_H_
