#ifndef HOSR_EVAL_EVALUATOR_H_
#define HOSR_EVAL_EVALUATOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "data/interactions.h"
#include "tensor/matrix.h"

namespace hosr::eval {

// Scores all items for a batch of users; returns (|users| x num_items).
// Implemented by every model (without autograd overhead).
using BatchScorer =
    std::function<tensor::Matrix(const std::vector<uint32_t>&)>;

// Aggregated top-K metrics plus the per-user samples that Table 3's paired
// significance tests are computed from.
struct EvalResult {
  double recall = 0.0;     // Recall@K averaged over evaluated users
  double map = 0.0;        // MAP@K
  double precision = 0.0;  // Precision@K
  double ndcg = 0.0;       // NDCG@K
  size_t num_users = 0;    // users with at least one test item
  std::vector<uint32_t> users;      // evaluated users, in order
  std::vector<double> per_user_recall;
  std::vector<double> per_user_ap;
};

// Top-K evaluator implementing the paper's protocol (Sec. 3.1): all items a
// user has not consumed in training are candidates; training items are
// masked out of the ranking; metrics average over users with >= 1 test item.
class Evaluator {
 public:
  // Both matrices must outlive the evaluator.
  Evaluator(const data::InteractionMatrix* train,
            const data::InteractionMatrix* test, uint32_t k);

  uint32_t k() const { return k_; }

  // Evaluates over every user that has at least one held-out test item.
  EvalResult Evaluate(const BatchScorer& scorer) const;

  // Evaluates over the given users only (those without test items are
  // skipped). Used for sparsity-group analysis.
  EvalResult EvaluateUsers(const BatchScorer& scorer,
                           const std::vector<uint32_t>& users) const;

 private:
  const data::InteractionMatrix* train_;
  const data::InteractionMatrix* test_;
  uint32_t k_;
};

// One interaction-sparsity user group (Fig. 6): users whose *training*
// interaction count falls in [min_interactions, max_interactions].
struct SparsityGroup {
  uint32_t min_interactions = 0;
  uint32_t max_interactions = 0;
  std::vector<uint32_t> users;
  std::string Label() const;  // e.g. "<=60" or "61-120"
};

// Partitions test users (those with >= 1 test item) into `num_groups`
// groups by ascending training interaction count such that each group
// carries approximately the same *total* number of training interactions —
// the paper's equal-total-interaction binning.
std::vector<SparsityGroup> BuildSparsityGroups(
    const data::InteractionMatrix& train, const data::InteractionMatrix& test,
    uint32_t num_groups);

}  // namespace hosr::eval

#endif  // HOSR_EVAL_EVALUATOR_H_
