#ifndef HOSR_CORE_HOSR_GAT_H_
#define HOSR_CORE_HOSR_GAT_H_

#include <string>
#include <vector>

#include "core/hosr.h"
#include "data/dataset.h"
#include "graph/csr.h"
#include "models/model.h"

namespace hosr::core {

// HOSR-GAT — the paper's second future-work direction (Sec. 5): "utilize
// attention mechanism to specify attention weights for user-user
// connections" (close vs normal friends).
//
// Propagation replaces Eq. 5's fixed decay factors 1/sqrt(|A_i||A_j|) with
// *learned per-edge* coefficients, GAT-style:
//
//   e_ij     = LeakyReLU(h_i W a_src + h_j W a_tgt)
//   alpha_ij = softmax over j in (A_i ∪ {i}) of e_ij
//   h_i'     = tanh( sum_j alpha_ij (h_j W) )
//
// Layer outputs are aggregated with HOSR's per-user attention network and
// prediction keeps Eq. 11's item-implicit term.
class HosrGat : public models::RankingModel {
 public:
  struct Config {
    uint32_t embedding_dim = 10;
    uint32_t num_layers = 3;
    LayerAggregation aggregation = LayerAggregation::kAttention;
    float leaky_slope = 0.2f;
    bool item_implicit_term = true;
    float embedding_dropout = 0.0f;
    float graph_dropout = 0.2f;
    float init_stddev = 0.05f;
    uint64_t seed = 7;

    util::Status Validate() const;
  };

  HosrGat(const data::Dataset& train, const Config& config);

  std::string name() const override { return "HOSR-GAT"; }
  uint32_t num_users() const override { return num_users_; }
  uint32_t num_items() const override { return num_items_; }

  autograd::Value ScorePairs(autograd::Tape* tape,
                             const std::vector<uint32_t>& users,
                             const std::vector<uint32_t>& items,
                             bool training) override;

  autograd::Value BuildLoss(autograd::Tape* tape, const data::BprBatch& batch,
                            util::Rng* rng) override;

  // Sliced loss: same split as Hosr — GAT propagation is the shared
  // forward, the tail gathers are sliced.
  bool SupportsSlicedLoss() const override { return true; }
  void BuildSharedForward(models::SharedForward* shared,
                          const data::BprBatch& batch,
                          util::Rng* rng) override;
  autograd::Value BuildLossSlice(autograd::Tape* tape,
                                 const models::SharedForward& shared,
                                 const data::BprBatch& batch, size_t begin,
                                 size_t end, util::Rng* slice_rng) override;

  tensor::Matrix ScoreAllItems(const std::vector<uint32_t>& users) override;

  void OnEpochBegin(uint32_t epoch, util::Rng* rng) override;

  autograd::ParamStore* params() override { return &params_; }

  // Learned first-layer attention coefficient of every directed edge
  // (self-loops included), inference mode. Entry e weights edge
  // (EdgeSource(e) -> edge_targets()[e]). For tests and introspection.
  std::vector<float> FirstLayerEdgeAttention();
  const std::vector<size_t>& edge_offsets() const { return edge_offsets_; }
  const std::vector<uint32_t>& edge_targets() const { return edge_targets_; }

 private:
  // Flattened "self + neighbors" edge arrays for the given graph.
  struct EdgeArrays {
    std::vector<size_t> offsets;    // n + 1
    std::vector<uint32_t> sources;  // E (segment owner, repeated)
    std::vector<uint32_t> targets;  // E
  };
  static EdgeArrays BuildEdges(const graph::SocialGraph& graph);

  // One GAT propagation step on the tape.
  autograd::Value GatLayer(autograd::Tape* tape, autograd::Value h,
                           size_t layer, const EdgeArrays& edges,
                           bool training);
  autograd::Value UserRepresentation(autograd::Tape* tape, bool training);

  uint32_t num_users_;
  uint32_t num_items_;
  Config config_;
  graph::SocialGraph social_;
  util::Rng dropout_rng_;
  // Full-graph edges (inference) and the epoch's thinned edges (training).
  std::vector<size_t> edge_offsets_;
  std::vector<uint32_t> edge_sources_;
  std::vector<uint32_t> edge_targets_;
  EdgeArrays active_edges_;
  graph::CsrMatrix item_term_;
  graph::CsrMatrix item_term_t_;
  autograd::ParamStore params_;
  autograd::Param* user_emb_;
  autograd::Param* item_emb_;
  std::vector<autograd::Param*> layer_weights_;
  std::vector<autograd::Param*> edge_attn_src_;  // (d x 1) per layer
  std::vector<autograd::Param*> edge_attn_tgt_;  // (d x 1) per layer
  autograd::Param* attn_proj_user_;
  autograd::Param* attn_proj_output_;
  autograd::Param* attn_vector_;
};

}  // namespace hosr::core

#endif  // HOSR_CORE_HOSR_GAT_H_
