#ifndef HOSR_CORE_MODEL_ZOO_H_
#define HOSR_CORE_MODEL_ZOO_H_

#include <memory>
#include <string>
#include <vector>

#include "core/hosr.h"
#include "data/dataset.h"
#include "models/model.h"
#include "util/statusor.h"

namespace hosr::core {

// Uniform construction of HOSR and every baseline, used by benches and
// examples that sweep over models.
struct ZooConfig {
  uint32_t embedding_dim = 10;
  uint64_t seed = 7;
  // HOSR-specific knobs forwarded to Hosr::Config.
  uint32_t hosr_layers = 3;
  float hosr_graph_dropout = 0.2f;
  float hosr_embedding_dropout = 0.0f;
};

// Names accepted by MakeModel, in the paper's Table 3 column order.
const std::vector<std::string>& AllModelNames();

// Builds a model by name: "BPR", "NCF", "TrustSVD", "NSCR", "IF-BPR+",
// "DeepInf", or "HOSR". Returns InvalidArgument for unknown names.
util::StatusOr<std::unique_ptr<models::RankingModel>> MakeModel(
    const std::string& name, const data::Dataset& train,
    const ZooConfig& config);

}  // namespace hosr::core

#endif  // HOSR_CORE_MODEL_ZOO_H_
