#ifndef HOSR_CORE_HOSR_JOINT_H_
#define HOSR_CORE_HOSR_JOINT_H_

#include <string>
#include <vector>

#include "core/hosr.h"
#include "data/dataset.h"
#include "graph/csr.h"
#include "models/model.h"

namespace hosr::core {

// HOSR-Joint — the paper's first future-work direction (Sec. 5):
// "jointly propagate user and item embedding".
//
// Instead of propagating user embeddings over the social graph only, this
// variant propagates a single embedding table over the *unified* graph
//
//        [ A_social   Y ]
//    G = [ Y^T        0 ]        (users first, then items)
//
// normalized as in Eq. 6 (D^{-1/2}(G + I)D^{-1/2}). Each layer therefore
// mixes three signals at once: social influence (user-user edges),
// collaborative filtering (user-item edges), and, at higher orders, the
// co-consumption and friend-of-friend structure. Layer outputs are
// aggregated with the same attention network as HOSR; prediction is the
// inner product of the final user and item representations.
class HosrJoint : public models::RankingModel {
 public:
  struct Config {
    uint32_t embedding_dim = 10;
    uint32_t num_layers = 3;
    LayerAggregation aggregation = LayerAggregation::kAttention;
    Activation activation = Activation::kTanh;
    float embedding_dropout = 0.0f;
    // Drops social and interaction edges independently, per epoch.
    float graph_dropout = 0.2f;
    float init_stddev = 0.05f;
    uint64_t seed = 7;

    util::Status Validate() const;
  };

  HosrJoint(const data::Dataset& train, const Config& config);

  std::string name() const override { return "HOSR-Joint"; }
  uint32_t num_users() const override { return num_users_; }
  uint32_t num_items() const override { return num_items_; }

  autograd::Value ScorePairs(autograd::Tape* tape,
                             const std::vector<uint32_t>& users,
                             const std::vector<uint32_t>& items,
                             bool training) override;

  autograd::Value BuildLoss(autograd::Tape* tape, const data::BprBatch& batch,
                            util::Rng* rng) override;

  // Sliced loss: the joint propagation is the shared forward; all three
  // tail gathers read the shared node representation.
  bool SupportsSlicedLoss() const override { return true; }
  void BuildSharedForward(models::SharedForward* shared,
                          const data::BprBatch& batch,
                          util::Rng* rng) override;
  autograd::Value BuildLossSlice(autograd::Tape* tape,
                                 const models::SharedForward& shared,
                                 const data::BprBatch& batch, size_t begin,
                                 size_t end, util::Rng* slice_rng) override;

  tensor::Matrix ScoreAllItems(const std::vector<uint32_t>& users) override;

  void OnEpochBegin(uint32_t epoch, util::Rng* rng) override;

  autograd::ParamStore* params() override { return &params_; }

  // Final (aggregated) embeddings of all n + m nodes, inference mode.
  tensor::Matrix FinalNodeEmbeddings() const;

 private:
  // Builds the normalized unified operator from (possibly thinned) social
  // and interaction edge sets.
  graph::CsrMatrix BuildJointLaplacian(
      const std::vector<std::pair<uint32_t, uint32_t>>& social_edges,
      const std::vector<data::Interaction>& interactions) const;

  autograd::Value PropagateAndAggregate(autograd::Tape* tape, bool training);

  uint32_t num_users_;
  uint32_t num_items_;
  Config config_;
  util::Rng dropout_rng_;
  std::vector<std::pair<uint32_t, uint32_t>> social_edges_;
  std::vector<data::Interaction> interaction_edges_;
  graph::CsrMatrix base_laplacian_;    // full graph (inference)
  graph::CsrMatrix active_laplacian_;  // epoch's thinned graph (training)
  autograd::ParamStore params_;
  autograd::Param* node_emb_;  // (n + m) x d, users then items
  std::vector<autograd::Param*> layer_weights_;
  autograd::Param* attn_proj_node_;
  autograd::Param* attn_proj_output_;
  autograd::Param* attn_vector_;
};

}  // namespace hosr::core

#endif  // HOSR_CORE_HOSR_JOINT_H_
