#ifndef HOSR_CORE_HOSR_H_
#define HOSR_CORE_HOSR_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "graph/csr.h"
#include "models/model.h"
#include "util/statusor.h"

namespace hosr::core {

// How the outputs of the k GCN layers are combined into the final user
// embedding (Table 4's model variants).
enum class LayerAggregation {
  kLast,       // "base": use u^(k) only (Eq. 7)
  kAverage,    // "average": equal-weight mean of u^(1..k)
  kAttention,  // "attention": learned per-user weights (Eqs. 8-10)
};

// Nonlinearity applied after each propagation layer. The paper uses tanh
// (Eq. 2); ReLU is provided for the activation ablation.
enum class Activation { kTanh, kRelu };

// Decay factor of the item-implicit term in Eq. 11.
enum class ImplicitDecay {
  kSqrtUserItems,  // 1/sqrt(|I_i|)            (the paper's choice)
  kSqrtBoth,       // 1/sqrt(|I_i| |A_j|)      (the alternative it mentions)
};

// HOSR — the paper's High-Order Social Recommender (Sec. 2): k stacked GCN
// layers propagate user embeddings along the social graph (Eqs. 3-6), an
// attention network aggregates the per-layer outputs (Eqs. 8-10), an
// SVD++-style item-implicit term joins the final embedding, and prediction
// is a dot product with the item embedding (Eq. 11). Trained with BPR
// (Eq. 12) under embedding dropout (p1) and graph dropout (p2) (Sec. 2.4).
class Hosr : public models::RankingModel {
 public:
  struct Config {
    uint32_t embedding_dim = 10;        // d
    uint32_t num_layers = 3;            // k
    LayerAggregation aggregation = LayerAggregation::kAttention;
    Activation activation = Activation::kTanh;
    // Include the self-connection in the propagation operator (Eq. 6 adds
    // I; disabling it is the self-connection ablation).
    bool self_connections = true;
    // Include the item-implicit term of Eq. 11.
    bool item_implicit_term = true;
    // Apply the per-layer weight matrices W^(k) (Eq. 4). Disabling them —
    // together with the activation — yields a LightGCN-style simplified
    // propagation, an ablation of the paper's design.
    bool use_layer_weights = true;
    // Apply the nonlinearity after each layer (Eq. 2's tanh).
    bool use_activation = true;
    ImplicitDecay implicit_decay = ImplicitDecay::kSqrtUserItems;
    float embedding_dropout = 0.0f;     // p1 (paper's best: 0)
    float graph_dropout = 0.2f;         // p2 (paper's best: 0.2)
    // Smaller than the shallow baselines' 0.1: embeddings pass through k
    // propagation layers, and a smaller start keeps early updates stable.
    float init_stddev = 0.05f;
    uint64_t seed = 7;

    util::Status Validate() const;
  };

  // `train` supplies both the social graph (propagation) and the training
  // interactions (item-implicit term). Aborts on invalid config; call
  // Config::Validate() first for recoverable handling.
  Hosr(const data::Dataset& train, const Config& config);

  std::string name() const override { return "HOSR"; }
  uint32_t num_users() const override { return num_users_; }
  uint32_t num_items() const override { return num_items_; }
  const Config& config() const { return config_; }

  autograd::Value ScorePairs(autograd::Tape* tape,
                             const std::vector<uint32_t>& users,
                             const std::vector<uint32_t>& items,
                             bool training) override;

  // Shares one propagation across the positive and negative BPR branches.
  autograd::Value BuildLoss(autograd::Tape* tape, const data::BprBatch& batch,
                            util::Rng* rng) override;

  // Sliced loss: the propagation/aggregation prefix is the shared forward
  // (built once per batch, consuming dropout noise exactly as BuildLoss
  // would); slices gather users from the shared representation and items
  // from a sparse item leaf.
  bool SupportsSlicedLoss() const override { return true; }
  void BuildSharedForward(models::SharedForward* shared,
                          const data::BprBatch& batch,
                          util::Rng* rng) override;
  autograd::Value BuildLossSlice(autograd::Tape* tape,
                                 const models::SharedForward& shared,
                                 const data::BprBatch& batch, size_t begin,
                                 size_t end, util::Rng* slice_rng) override;

  tensor::Matrix ScoreAllItems(const std::vector<uint32_t>& users) override;

  // Frozen factors for serving: the user side is the fully aggregated
  // inference embedding including the item-implicit term, so snapshot
  // scores match ScoreAllItems bit for bit.
  util::StatusOr<models::FrozenFactors> ExportFactors() const override;

  // Re-samples the graph-dropout adjacency (Sec. 2.4: once per epoch).
  void OnEpochBegin(uint32_t epoch, util::Rng* rng) override;

  autograd::ParamStore* params() override { return &params_; }

  // Per-user attention weights over layers, inference mode: (n x k).
  // Only meaningful for kAttention aggregation — Fig. 7's data.
  tensor::Matrix AttentionWeights() const;

  // Final inference-mode user embeddings (aggregated, without the
  // item-implicit term): (n x d).
  tensor::Matrix FinalUserEmbeddings() const;

 private:
  // Builds all k layer outputs on the tape; returns them in order 1..k.
  std::vector<autograd::Value> PropagateLayers(autograd::Tape* tape,
                                               bool training);
  // Aggregates layer outputs per config (attention / average / last).
  autograd::Value AggregateLayers(autograd::Tape* tape, autograd::Value u0,
                                  const std::vector<autograd::Value>& layers);
  // Differentiable final user embedding incl. item-implicit term.
  autograd::Value UserRepresentation(autograd::Tape* tape, bool training);

  // Inference-mode mirrors (plain tensor ops on current param values).
  std::vector<tensor::Matrix> PropagateLayersInference() const;
  tensor::Matrix AggregateLayersInference(
      const std::vector<tensor::Matrix>& layers) const;
  tensor::Matrix AttentionWeightsFor(
      const std::vector<tensor::Matrix>& layers) const;

  void RebuildActiveLaplacian(const graph::SocialGraph& graph);

  uint32_t num_users_;
  uint32_t num_items_;
  Config config_;
  graph::SocialGraph social_;
  util::Rng dropout_rng_;
  // Propagation operator on the full graph (inference) and on the
  // epoch's thinned graph (training). Both are symmetric.
  graph::CsrMatrix base_laplacian_;
  graph::CsrMatrix active_laplacian_;
  // Item-implicit operator of Eq. 11 (n x m) and transpose.
  graph::CsrMatrix item_term_;
  graph::CsrMatrix item_term_t_;
  autograd::ParamStore params_;
  autograd::Param* user_emb_;
  autograd::Param* item_emb_;
  std::vector<autograd::Param*> layer_weights_;  // W^(k), Eq. 4
  autograd::Param* attn_proj_user_;              // P_u, Eq. 8
  autograd::Param* attn_proj_output_;            // P_o, Eq. 8
  autograd::Param* attn_vector_;                 // h,   Eq. 8 (d x 1)
};

}  // namespace hosr::core

#endif  // HOSR_CORE_HOSR_H_
