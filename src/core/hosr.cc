#include "core/hosr.h"

#include <cmath>

#include "graph/laplacian.h"
#include "graph/sampling.h"
#include "graph/spmm.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/string_util.h"

namespace hosr::core {

using autograd::Value;
using tensor::Matrix;

namespace {

// Item-implicit operator of Eq. 11: entry (i, j') for j' in I_i, with the
// configured decay factor.
graph::CsrMatrix BuildItemTermOperator(
    const data::InteractionMatrix& interactions, ImplicitDecay decay) {
  // |A_j|: number of users that interacted with item j (for kSqrtBoth).
  std::vector<uint32_t> item_degree(interactions.num_items(), 0);
  if (decay == ImplicitDecay::kSqrtBoth) {
    for (uint32_t u = 0; u < interactions.num_users(); ++u) {
      for (const uint32_t j : interactions.ItemsOf(u)) ++item_degree[j];
    }
  }
  std::vector<graph::Triplet> triplets;
  triplets.reserve(interactions.nnz());
  for (uint32_t u = 0; u < interactions.num_users(); ++u) {
    const auto& items = interactions.ItemsOf(u);
    if (items.empty()) continue;
    const float user_decay =
        1.0f / std::sqrt(static_cast<float>(items.size()));
    for (const uint32_t j : items) {
      float w = user_decay;
      if (decay == ImplicitDecay::kSqrtBoth) {
        w /= std::sqrt(static_cast<float>(std::max<uint32_t>(1, item_degree[j])));
      }
      triplets.push_back({u, j, w});
    }
  }
  return graph::CsrMatrix::FromTriplets(interactions.num_users(),
                                        interactions.num_items(),
                                        std::move(triplets));
}

}  // namespace

util::Status Hosr::Config::Validate() const {
  if (embedding_dim == 0) {
    return util::Status::InvalidArgument("embedding_dim must be > 0");
  }
  if (num_layers == 0) {
    return util::Status::InvalidArgument("num_layers must be > 0");
  }
  if (embedding_dropout < 0.0f || embedding_dropout >= 1.0f) {
    return util::Status::InvalidArgument("embedding_dropout must be in [0,1)");
  }
  if (graph_dropout < 0.0f || graph_dropout >= 1.0f) {
    return util::Status::InvalidArgument("graph_dropout must be in [0,1)");
  }
  return util::Status::Ok();
}

Hosr::Hosr(const data::Dataset& train, const Config& config)
    : num_users_(train.num_users()),
      num_items_(train.num_items()),
      config_(config),
      social_(train.social),
      dropout_rng_(config.seed ^ 0x9e6c63d0876a9a47ULL) {
  HOSR_CHECK(config.Validate().ok()) << config.Validate().ToString();
  RebuildActiveLaplacian(social_);
  base_laplacian_ = active_laplacian_;
  item_term_ = BuildItemTermOperator(train.interactions,
                                     config_.implicit_decay);
  item_term_t_ = item_term_.Transpose();

  util::Rng rng(config.seed);
  const uint32_t d = config.embedding_dim;
  user_emb_ = params_.CreateGaussian("user_emb", num_users_, d,
                                     config.init_stddev, &rng);
  item_emb_ = params_.CreateGaussian("item_emb", num_items_, d,
                                     config.init_stddev, &rng);
  if (config.use_layer_weights) {
    for (uint32_t layer = 0; layer < config.num_layers; ++layer) {
      layer_weights_.push_back(params_.CreateXavier(
          util::StrFormat("gcn_w%u", layer + 1), d, d, &rng));
    }
  }
  if (config.aggregation == LayerAggregation::kAttention) {
    attn_proj_user_ = params_.CreateXavier("attn_p_u", d, d, &rng);
    attn_proj_output_ = params_.CreateXavier("attn_p_o", d, d, &rng);
    attn_vector_ = params_.CreateXavier("attn_h", d, 1, &rng);
  } else {
    attn_proj_user_ = attn_proj_output_ = attn_vector_ = nullptr;
  }
}

void Hosr::RebuildActiveLaplacian(const graph::SocialGraph& graph) {
  active_laplacian_ = config_.self_connections
                          ? graph::NormalizedLaplacian(graph.adjacency())
                          : graph::NormalizedAdjacency(graph.adjacency());
}

void Hosr::OnEpochBegin(uint32_t epoch, util::Rng* rng) {
  (void)epoch;
  if (config_.graph_dropout <= 0.0f) return;
  const graph::SocialGraph thinned =
      graph::GraphDropout(social_, config_.graph_dropout, rng);
  RebuildActiveLaplacian(thinned);
}

std::vector<Value> Hosr::PropagateLayers(autograd::Tape* tape,
                                         bool training) {
  const graph::CsrMatrix* laplacian =
      training ? &active_laplacian_ : &base_laplacian_;
  std::vector<Value> layers;
  layers.reserve(config_.num_layers);
  Value h = tape->Param(user_emb_);
  for (uint32_t layer = 0; layer < config_.num_layers; ++layer) {
    obs::ScopedSpan span(obs::IndexedSpanName("hosr/layer_", layer + 1));
    // Eq. 5: U^(k) = act(L U^(k-1) W^(k)); L is symmetric.
    h = tape->SpMM(laplacian, laplacian, h);
    if (config_.use_layer_weights) {
      h = tape->MatMul(h, tape->Param(layer_weights_[layer]));
    }
    if (config_.use_activation) {
      h = config_.activation == Activation::kTanh ? tape->Tanh(h)
                                                  : tape->Relu(h);
    }
    // Embedding dropout (p1) on each layer's output.
    h = tape->Dropout(h, config_.embedding_dropout, training, &dropout_rng_);
    layers.push_back(h);
  }
  return layers;
}

Value Hosr::AggregateLayers(autograd::Tape* tape, Value u0,
                            const std::vector<Value>& layers) {
  switch (config_.aggregation) {
    case LayerAggregation::kLast:
      return layers.back();
    case LayerAggregation::kAverage: {
      Value acc = layers[0];
      for (size_t l = 1; l < layers.size(); ++l) {
        acc = tape->Add(acc, layers[l]);
      }
      return tape->Scale(acc, 1.0f / static_cast<float>(layers.size()));
    }
    case LayerAggregation::kAttention: {
      if (layers.size() == 1) return layers[0];
      HOSR_TRACE_SPAN("hosr/attention_aggregate");
      // Eq. 8: a_il = ReLU(u_i P_u + u_i^(l) P_o) h^T.
      Value projected_u0 = tape->MatMul(u0, tape->Param(attn_proj_user_));
      Value p_o = tape->Param(attn_proj_output_);
      Value h_vec = tape->Param(attn_vector_);
      Value scores;  // (n x k), built by concatenation
      for (size_t l = 0; l < layers.size(); ++l) {
        Value hidden =
            tape->Relu(tape->Add(projected_u0, tape->MatMul(layers[l], p_o)));
        Value a_l = tape->MatMul(hidden, h_vec);  // (n x 1)
        scores = l == 0 ? a_l : tape->ConcatCols(scores, a_l);
      }
      // Eq. 9: softmax over layers; Eq. 10: weighted sum.
      Value weights = tape->RowSoftmax(scores);
      Value aggregated;
      for (size_t l = 0; l < layers.size(); ++l) {
        Value s_l = tape->SliceCols(weights, l, 1);
        Value weighted = tape->BroadcastColMul(layers[l], s_l);
        aggregated = l == 0 ? weighted : tape->Add(aggregated, weighted);
      }
      return aggregated;
    }
  }
  HOSR_CHECK(false) << "unreachable aggregation";
  return layers.back();
}

Value Hosr::UserRepresentation(autograd::Tape* tape, bool training) {
  Value u0 = tape->Param(user_emb_);
  std::vector<Value> layers = PropagateLayers(tape, training);
  Value aggregated = AggregateLayers(tape, u0, layers);
  if (config_.item_implicit_term) {
    // Eq. 11: add 1/sqrt(|I_i|) * sum of interacted item embeddings.
    Value implicit =
        tape->SpMM(&item_term_, &item_term_t_, tape->Param(item_emb_));
    aggregated = tape->Add(aggregated, implicit);
  }
  return aggregated;
}

Value Hosr::ScorePairs(autograd::Tape* tape,
                       const std::vector<uint32_t>& users,
                       const std::vector<uint32_t>& items, bool training) {
  Value rep = UserRepresentation(tape, training);
  Value u = tape->GatherRows(rep, users);
  Value v = tape->GatherRows(tape->Param(item_emb_), items);
  return tape->RowDot(u, v);
}

Value Hosr::BuildLoss(autograd::Tape* tape, const data::BprBatch& batch,
                      util::Rng* rng) {
  (void)rng;
  Value rep = UserRepresentation(tape, /*training=*/true);
  Value u = tape->GatherRows(rep, batch.users);
  Value item_param = tape->Param(item_emb_);
  Value pos = tape->RowDot(u, tape->GatherRows(item_param, batch.pos_items));
  Value neg = tape->RowDot(u, tape->GatherRows(item_param, batch.neg_items));
  Value margin = tape->Sub(pos, neg);
  // Eq. 12 without the L2 term (decoupled weight decay in the optimizer).
  return tape->Scale(tape->Mean(tape->LogSigmoid(margin)), -1.0f);
}

void Hosr::BuildSharedForward(models::SharedForward* shared,
                              const data::BprBatch& batch, util::Rng* rng) {
  (void)batch;
  (void)rng;
  shared->outputs.push_back(
      UserRepresentation(&shared->tape, /*training=*/true));
}

Value Hosr::BuildLossSlice(autograd::Tape* tape,
                           const models::SharedForward& shared,
                           const data::BprBatch& batch, size_t begin,
                           size_t end, util::Rng* slice_rng) {
  (void)slice_rng;
  // Mirrors BuildLoss's tail over this slice's rows: the user gather reads
  // the shared representation (key 0), the item leaf carries both item
  // gathers — so the trainer's reduction replays the monolithic fold
  // bit-identically.
  Value rep = tape->SparseShared(0, &shared.outputs[0].value());
  Value u = tape->GatherRows(rep, models::SliceOf(batch.users, begin, end));
  Value item_param = tape->SparseParam(item_emb_);
  Value pos = tape->RowDot(
      u, tape->GatherRows(item_param,
                          models::SliceOf(batch.pos_items, begin, end)));
  Value neg = tape->RowDot(
      u, tape->GatherRows(item_param,
                          models::SliceOf(batch.neg_items, begin, end)));
  Value margin = tape->Sub(pos, neg);
  const float scale = -1.0f / static_cast<float>(batch.size());
  return tape->Scale(tape->Sum(tape->LogSigmoid(margin)), scale);
}

std::vector<Matrix> Hosr::PropagateLayersInference() const {
  std::vector<Matrix> layers;
  layers.reserve(config_.num_layers);
  Matrix h = user_emb_->value;
  for (uint32_t layer = 0; layer < config_.num_layers; ++layer) {
    obs::ScopedSpan span(obs::IndexedSpanName("hosr/layer_", layer + 1));
    h = graph::Spmm(base_laplacian_, h);
    if (config_.use_layer_weights) {
      h = tensor::MatMul(h, layer_weights_[layer]->value);
    }
    if (config_.use_activation) {
      h = config_.activation == Activation::kTanh ? tensor::Tanh(h)
                                                  : tensor::Relu(h);
    }
    layers.push_back(h);
  }
  return layers;
}

Matrix Hosr::AggregateLayersInference(
    const std::vector<Matrix>& layers) const {
  switch (config_.aggregation) {
    case LayerAggregation::kLast:
      return layers.back();
    case LayerAggregation::kAverage: {
      Matrix acc = layers[0];
      for (size_t l = 1; l < layers.size(); ++l) {
        tensor::Axpy(1.0f, layers[l], &acc);
      }
      return tensor::Scale(acc, 1.0f / static_cast<float>(layers.size()));
    }
    case LayerAggregation::kAttention: {
      if (layers.size() == 1) return layers[0];
      const Matrix weights = AttentionWeightsFor(layers);
      Matrix acc(num_users_, config_.embedding_dim);
      for (size_t l = 0; l < layers.size(); ++l) {
        const Matrix& layer = layers[l];
        for (size_t r = 0; r < acc.rows(); ++r) {
          const float w = weights(r, l);
          float* ar = acc.row(r);
          const float* lr = layer.row(r);
          for (size_t c = 0; c < acc.cols(); ++c) ar[c] += w * lr[c];
        }
      }
      return acc;
    }
  }
  HOSR_CHECK(false) << "unreachable aggregation";
  return layers.back();
}

Matrix Hosr::AttentionWeightsFor(const std::vector<Matrix>& layers) const {
  HOSR_CHECK(config_.aggregation == LayerAggregation::kAttention);
  const Matrix projected_u0 =
      tensor::MatMul(user_emb_->value, attn_proj_user_->value);
  Matrix scores(num_users_, layers.size());
  for (size_t l = 0; l < layers.size(); ++l) {
    Matrix hidden = tensor::MatMul(layers[l], attn_proj_output_->value);
    tensor::Axpy(1.0f, projected_u0, &hidden);
    hidden = tensor::Relu(hidden);
    const Matrix a_l = tensor::MatMul(hidden, attn_vector_->value);
    for (size_t r = 0; r < scores.rows(); ++r) scores(r, l) = a_l(r, 0);
  }
  Matrix weights = tensor::RowSoftmax(scores);
  if (obs::Enabled()) {
    // Distribution of post-softmax layer weights (Eq. 9): how much each
    // user leans on each propagation depth.
    auto& histogram = HOSR_HISTOGRAM("hosr/attn_softmax_weight");
    for (size_t r = 0; r < weights.rows(); ++r) {
      for (size_t c = 0; c < weights.cols(); ++c) {
        histogram.Observe(weights(r, c));
      }
    }
  }
  return weights;
}

Matrix Hosr::AttentionWeights() const {
  return AttentionWeightsFor(PropagateLayersInference());
}

Matrix Hosr::FinalUserEmbeddings() const {
  return AggregateLayersInference(PropagateLayersInference());
}

Matrix Hosr::ScoreAllItems(const std::vector<uint32_t>& users) {
  HOSR_TRACE_SPAN("hosr/score_all_items");
  Matrix rep = FinalUserEmbeddings();
  if (config_.item_implicit_term) {
    const Matrix implicit = graph::Spmm(item_term_, item_emb_->value);
    tensor::Axpy(1.0f, implicit, &rep);
  }
  const Matrix u = tensor::GatherRows(rep, users);
  Matrix scores(users.size(), num_items_);
  tensor::Gemm(u, false, item_emb_->value, true, 1.0f, 0.0f, &scores);
  return scores;
}

util::StatusOr<models::FrozenFactors> Hosr::ExportFactors() const {
  models::FrozenFactors factors;
  // Same composition as ScoreAllItems: aggregated propagation output plus
  // the Eq. 11 item-implicit term, on the full (dropout-free) graph.
  Matrix rep = FinalUserEmbeddings();
  if (config_.item_implicit_term) {
    const Matrix implicit = graph::Spmm(item_term_, item_emb_->value);
    tensor::Axpy(1.0f, implicit, &rep);
  }
  factors.user_factors = std::move(rep);
  factors.item_factors = item_emb_->value;
  return factors;
}

}  // namespace hosr::core
