#include "core/model_zoo.h"

#include "models/bpr_mf.h"
#include "models/deepinf.h"
#include "models/if_bpr.h"
#include "models/ncf.h"
#include "models/nscr.h"
#include "models/trust_svd.h"

namespace hosr::core {

const std::vector<std::string>& AllModelNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "BPR", "NCF", "TrustSVD", "NSCR", "IF-BPR+", "DeepInf", "HOSR"};
  return *names;
}

util::StatusOr<std::unique_ptr<models::RankingModel>> MakeModel(
    const std::string& name, const data::Dataset& train,
    const ZooConfig& config) {
  if (name == "BPR") {
    models::BprMf::Config c;
    c.embedding_dim = config.embedding_dim;
    c.seed = config.seed;
    return std::unique_ptr<models::RankingModel>(
        new models::BprMf(train.num_users(), train.num_items(), c));
  }
  if (name == "NCF") {
    models::Ncf::Config c;
    c.embedding_dim = config.embedding_dim;
    c.seed = config.seed;
    return std::unique_ptr<models::RankingModel>(
        new models::Ncf(train.num_users(), train.num_items(), c));
  }
  if (name == "TrustSVD") {
    models::TrustSvd::Config c;
    c.embedding_dim = config.embedding_dim;
    c.seed = config.seed;
    return std::unique_ptr<models::RankingModel>(
        new models::TrustSvd(train, c));
  }
  if (name == "NSCR") {
    models::Nscr::Config c;
    c.embedding_dim = config.embedding_dim;
    c.seed = config.seed;
    return std::unique_ptr<models::RankingModel>(new models::Nscr(train, c));
  }
  if (name == "IF-BPR+") {
    models::IfBpr::Config c;
    c.embedding_dim = config.embedding_dim;
    c.seed = config.seed;
    return std::unique_ptr<models::RankingModel>(new models::IfBpr(train, c));
  }
  if (name == "DeepInf") {
    models::DeepInf::Config c;
    c.embedding_dim = config.embedding_dim;
    c.seed = config.seed;
    return std::unique_ptr<models::RankingModel>(
        new models::DeepInf(train, c));
  }
  if (name == "HOSR") {
    Hosr::Config c;
    c.embedding_dim = config.embedding_dim;
    c.num_layers = config.hosr_layers;
    c.graph_dropout = config.hosr_graph_dropout;
    c.embedding_dropout = config.hosr_embedding_dropout;
    c.seed = config.seed;
    return std::unique_ptr<models::RankingModel>(new Hosr(train, c));
  }
  return util::Status::InvalidArgument("unknown model: " + name);
}

}  // namespace hosr::core
