#include "core/hosr_joint.h"

#include <cmath>

#include "graph/laplacian.h"
#include "graph/spmm.h"
#include "tensor/ops.h"
#include "util/string_util.h"

namespace hosr::core {

using autograd::Value;
using tensor::Matrix;

util::Status HosrJoint::Config::Validate() const {
  if (embedding_dim == 0) {
    return util::Status::InvalidArgument("embedding_dim must be > 0");
  }
  if (num_layers == 0) {
    return util::Status::InvalidArgument("num_layers must be > 0");
  }
  if (embedding_dropout < 0.0f || embedding_dropout >= 1.0f) {
    return util::Status::InvalidArgument("embedding_dropout must be in [0,1)");
  }
  if (graph_dropout < 0.0f || graph_dropout >= 1.0f) {
    return util::Status::InvalidArgument("graph_dropout must be in [0,1)");
  }
  return util::Status::Ok();
}

HosrJoint::HosrJoint(const data::Dataset& train, const Config& config)
    : num_users_(train.num_users()),
      num_items_(train.num_items()),
      config_(config),
      dropout_rng_(config.seed ^ 0x853c49e6748fea9bULL),
      social_edges_(train.social.EdgeList()),
      interaction_edges_(train.interactions.ToList()) {
  HOSR_CHECK(config.Validate().ok()) << config.Validate().ToString();
  base_laplacian_ = BuildJointLaplacian(social_edges_, interaction_edges_);
  active_laplacian_ = base_laplacian_;

  util::Rng rng(config.seed);
  const uint32_t d = config.embedding_dim;
  node_emb_ = params_.CreateGaussian("node_emb", num_users_ + num_items_, d,
                                     config.init_stddev, &rng);
  for (uint32_t layer = 0; layer < config.num_layers; ++layer) {
    layer_weights_.push_back(params_.CreateXavier(
        util::StrFormat("joint_w%u", layer + 1), d, d, &rng));
  }
  if (config.aggregation == LayerAggregation::kAttention) {
    attn_proj_node_ = params_.CreateXavier("joint_attn_p_u", d, d, &rng);
    attn_proj_output_ = params_.CreateXavier("joint_attn_p_o", d, d, &rng);
    attn_vector_ = params_.CreateXavier("joint_attn_h", d, 1, &rng);
  } else {
    attn_proj_node_ = attn_proj_output_ = attn_vector_ = nullptr;
  }
}

graph::CsrMatrix HosrJoint::BuildJointLaplacian(
    const std::vector<std::pair<uint32_t, uint32_t>>& social_edges,
    const std::vector<data::Interaction>& interactions) const {
  const uint32_t n = num_users_ + num_items_;
  std::vector<graph::Triplet> triplets;
  triplets.reserve(social_edges.size() * 2 + interactions.size() * 2);
  for (const auto& [a, b] : social_edges) {
    triplets.push_back({a, b, 1.0f});
    triplets.push_back({b, a, 1.0f});
  }
  for (const auto& edge : interactions) {
    const uint32_t item_node = num_users_ + edge.item;
    triplets.push_back({edge.user, item_node, 1.0f});
    triplets.push_back({item_node, edge.user, 1.0f});
  }
  const graph::CsrMatrix adjacency =
      graph::CsrMatrix::FromTriplets(n, n, std::move(triplets));
  return graph::NormalizedLaplacian(adjacency);
}

void HosrJoint::OnEpochBegin(uint32_t epoch, util::Rng* rng) {
  (void)epoch;
  if (config_.graph_dropout <= 0.0f) return;
  std::vector<std::pair<uint32_t, uint32_t>> kept_social;
  for (const auto& edge : social_edges_) {
    if (!rng->Bernoulli(config_.graph_dropout)) kept_social.push_back(edge);
  }
  std::vector<data::Interaction> kept_interactions;
  for (const auto& edge : interaction_edges_) {
    if (!rng->Bernoulli(config_.graph_dropout)) {
      kept_interactions.push_back(edge);
    }
  }
  active_laplacian_ = BuildJointLaplacian(kept_social, kept_interactions);
}

Value HosrJoint::PropagateAndAggregate(autograd::Tape* tape, bool training) {
  const graph::CsrMatrix* laplacian =
      training ? &active_laplacian_ : &base_laplacian_;
  Value e0 = tape->Param(node_emb_);
  std::vector<Value> layers;
  layers.reserve(config_.num_layers);
  Value h = e0;
  for (uint32_t layer = 0; layer < config_.num_layers; ++layer) {
    h = tape->SpMM(laplacian, laplacian, h);
    h = tape->MatMul(h, tape->Param(layer_weights_[layer]));
    h = config_.activation == Activation::kTanh ? tape->Tanh(h)
                                                : tape->Relu(h);
    h = tape->Dropout(h, config_.embedding_dropout, training, &dropout_rng_);
    layers.push_back(h);
  }

  switch (config_.aggregation) {
    case LayerAggregation::kLast:
      return layers.back();
    case LayerAggregation::kAverage: {
      Value acc = layers[0];
      for (size_t l = 1; l < layers.size(); ++l) acc = tape->Add(acc, layers[l]);
      return tape->Scale(acc, 1.0f / static_cast<float>(layers.size()));
    }
    case LayerAggregation::kAttention: {
      if (layers.size() == 1) return layers[0];
      Value projected = tape->MatMul(e0, tape->Param(attn_proj_node_));
      Value p_o = tape->Param(attn_proj_output_);
      Value h_vec = tape->Param(attn_vector_);
      Value scores;
      for (size_t l = 0; l < layers.size(); ++l) {
        Value hidden =
            tape->Relu(tape->Add(projected, tape->MatMul(layers[l], p_o)));
        Value a_l = tape->MatMul(hidden, h_vec);
        scores = l == 0 ? a_l : tape->ConcatCols(scores, a_l);
      }
      Value weights = tape->RowSoftmax(scores);
      Value aggregated;
      for (size_t l = 0; l < layers.size(); ++l) {
        Value weighted =
            tape->BroadcastColMul(layers[l], tape->SliceCols(weights, l, 1));
        aggregated = l == 0 ? weighted : tape->Add(aggregated, weighted);
      }
      return aggregated;
    }
  }
  HOSR_CHECK(false) << "unreachable aggregation";
  return layers.back();
}

Value HosrJoint::ScorePairs(autograd::Tape* tape,
                            const std::vector<uint32_t>& users,
                            const std::vector<uint32_t>& items,
                            bool training) {
  Value nodes = PropagateAndAggregate(tape, training);
  std::vector<uint32_t> item_nodes(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    HOSR_CHECK(items[i] < num_items_);
    item_nodes[i] = num_users_ + items[i];
  }
  Value u = tape->GatherRows(nodes, users);
  Value v = tape->GatherRows(nodes, item_nodes);
  return tape->RowDot(u, v);
}

Value HosrJoint::BuildLoss(autograd::Tape* tape, const data::BprBatch& batch,
                           util::Rng* rng) {
  (void)rng;
  Value nodes = PropagateAndAggregate(tape, /*training=*/true);
  std::vector<uint32_t> pos_nodes(batch.pos_items.size());
  std::vector<uint32_t> neg_nodes(batch.neg_items.size());
  for (size_t i = 0; i < batch.pos_items.size(); ++i) {
    pos_nodes[i] = num_users_ + batch.pos_items[i];
    neg_nodes[i] = num_users_ + batch.neg_items[i];
  }
  Value u = tape->GatherRows(nodes, batch.users);
  Value pos = tape->RowDot(u, tape->GatherRows(nodes, pos_nodes));
  Value neg = tape->RowDot(u, tape->GatherRows(nodes, neg_nodes));
  return tape->Scale(tape->Mean(tape->LogSigmoid(tape->Sub(pos, neg))),
                     -1.0f);
}

void HosrJoint::BuildSharedForward(models::SharedForward* shared,
                                   const data::BprBatch& batch,
                                   util::Rng* rng) {
  (void)batch;
  (void)rng;
  shared->outputs.push_back(
      PropagateAndAggregate(&shared->tape, /*training=*/true));
}

Value HosrJoint::BuildLossSlice(autograd::Tape* tape,
                                const models::SharedForward& shared,
                                const data::BprBatch& batch, size_t begin,
                                size_t end, util::Rng* slice_rng) {
  (void)slice_rng;
  // Mirrors BuildLoss's tail: one shared node-representation leaf carries
  // the user, positive-item, and negative-item gathers (three op segments
  // on one sink), so the reduction replays the monolithic scatter order.
  std::vector<uint32_t> pos_nodes(end - begin);
  std::vector<uint32_t> neg_nodes(end - begin);
  for (size_t i = begin; i < end; ++i) {
    pos_nodes[i - begin] = num_users_ + batch.pos_items[i];
    neg_nodes[i - begin] = num_users_ + batch.neg_items[i];
  }
  Value nodes = tape->SparseShared(0, &shared.outputs[0].value());
  Value u = tape->GatherRows(nodes, models::SliceOf(batch.users, begin, end));
  Value pos = tape->RowDot(u, tape->GatherRows(nodes, std::move(pos_nodes)));
  Value neg = tape->RowDot(u, tape->GatherRows(nodes, std::move(neg_nodes)));
  const float scale = -1.0f / static_cast<float>(batch.size());
  return tape->Scale(tape->Sum(tape->LogSigmoid(tape->Sub(pos, neg))), scale);
}

Matrix HosrJoint::FinalNodeEmbeddings() const {
  Matrix h = node_emb_->value;
  std::vector<Matrix> layers;
  layers.reserve(config_.num_layers);
  for (uint32_t layer = 0; layer < config_.num_layers; ++layer) {
    h = graph::Spmm(base_laplacian_, h);
    h = tensor::MatMul(h, layer_weights_[layer]->value);
    h = config_.activation == Activation::kTanh ? tensor::Tanh(h)
                                                : tensor::Relu(h);
    layers.push_back(h);
  }
  switch (config_.aggregation) {
    case LayerAggregation::kLast:
      return layers.back();
    case LayerAggregation::kAverage: {
      Matrix acc = layers[0];
      for (size_t l = 1; l < layers.size(); ++l) {
        tensor::Axpy(1.0f, layers[l], &acc);
      }
      return tensor::Scale(acc, 1.0f / static_cast<float>(layers.size()));
    }
    case LayerAggregation::kAttention: {
      if (layers.size() == 1) return layers[0];
      const Matrix projected =
          tensor::MatMul(node_emb_->value, attn_proj_node_->value);
      Matrix scores(node_emb_->value.rows(), layers.size());
      for (size_t l = 0; l < layers.size(); ++l) {
        Matrix hidden = tensor::MatMul(layers[l], attn_proj_output_->value);
        tensor::Axpy(1.0f, projected, &hidden);
        hidden = tensor::Relu(hidden);
        const Matrix a_l = tensor::MatMul(hidden, attn_vector_->value);
        for (size_t r = 0; r < scores.rows(); ++r) scores(r, l) = a_l(r, 0);
      }
      const Matrix weights = tensor::RowSoftmax(scores);
      Matrix acc(node_emb_->value.rows(), config_.embedding_dim);
      for (size_t l = 0; l < layers.size(); ++l) {
        for (size_t r = 0; r < acc.rows(); ++r) {
          const float w = weights(r, l);
          float* ar = acc.row(r);
          const float* lr = layers[l].row(r);
          for (size_t c = 0; c < acc.cols(); ++c) ar[c] += w * lr[c];
        }
      }
      return acc;
    }
  }
  HOSR_CHECK(false) << "unreachable aggregation";
  return layers.back();
}

Matrix HosrJoint::ScoreAllItems(const std::vector<uint32_t>& users) {
  const Matrix nodes = FinalNodeEmbeddings();
  const Matrix u = tensor::GatherRows(nodes, users);
  // Item rows occupy [num_users_, num_users_ + num_items_).
  Matrix items(num_items_, config_.embedding_dim);
  for (uint32_t j = 0; j < num_items_; ++j) {
    const float* src = nodes.row(num_users_ + j);
    std::copy(src, src + config_.embedding_dim, items.row(j));
  }
  Matrix scores(users.size(), num_items_);
  tensor::Gemm(u, false, items, true, 1.0f, 0.0f, &scores);
  return scores;
}

}  // namespace hosr::core
