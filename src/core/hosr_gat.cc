#include "core/hosr_gat.h"

#include <cmath>

#include "graph/sampling.h"
#include "graph/spmm.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/string_util.h"

namespace hosr::core {

using autograd::Value;
using tensor::Matrix;

namespace {

// Item-implicit operator of Eq. 11 with the paper's 1/sqrt(|I_i|) decay.
graph::CsrMatrix BuildItemTermOperator(
    const data::InteractionMatrix& interactions) {
  std::vector<graph::Triplet> triplets;
  triplets.reserve(interactions.nnz());
  for (uint32_t u = 0; u < interactions.num_users(); ++u) {
    const auto& items = interactions.ItemsOf(u);
    if (items.empty()) continue;
    const float w = 1.0f / std::sqrt(static_cast<float>(items.size()));
    for (const uint32_t j : items) triplets.push_back({u, j, w});
  }
  return graph::CsrMatrix::FromTriplets(interactions.num_users(),
                                        interactions.num_items(),
                                        std::move(triplets));
}

}  // namespace

util::Status HosrGat::Config::Validate() const {
  if (embedding_dim == 0) {
    return util::Status::InvalidArgument("embedding_dim must be > 0");
  }
  if (num_layers == 0) {
    return util::Status::InvalidArgument("num_layers must be > 0");
  }
  if (leaky_slope < 0.0f || leaky_slope >= 1.0f) {
    return util::Status::InvalidArgument("leaky_slope must be in [0,1)");
  }
  if (embedding_dropout < 0.0f || embedding_dropout >= 1.0f) {
    return util::Status::InvalidArgument("embedding_dropout must be in [0,1)");
  }
  if (graph_dropout < 0.0f || graph_dropout >= 1.0f) {
    return util::Status::InvalidArgument("graph_dropout must be in [0,1)");
  }
  return util::Status::Ok();
}

HosrGat::EdgeArrays HosrGat::BuildEdges(const graph::SocialGraph& graph) {
  EdgeArrays edges;
  const uint32_t n = graph.num_users();
  edges.offsets.reserve(n + 1);
  edges.offsets.push_back(0);
  edges.sources.reserve(graph.adjacency().nnz() + n);
  edges.targets.reserve(graph.adjacency().nnz() + n);
  const auto& adj = graph.adjacency();
  for (uint32_t i = 0; i < n; ++i) {
    // Self-loop first, then neighbors.
    edges.sources.push_back(i);
    edges.targets.push_back(i);
    for (size_t k = adj.row_begin(i); k < adj.row_end(i); ++k) {
      edges.sources.push_back(i);
      edges.targets.push_back(adj.col_idx()[k]);
    }
    edges.offsets.push_back(edges.targets.size());
  }
  return edges;
}

HosrGat::HosrGat(const data::Dataset& train, const Config& config)
    : num_users_(train.num_users()),
      num_items_(train.num_items()),
      config_(config),
      social_(train.social),
      dropout_rng_(config.seed ^ 0xc2b2ae3d27d4eb4fULL),
      item_term_(BuildItemTermOperator(train.interactions)),
      item_term_t_(item_term_.Transpose()) {
  HOSR_CHECK(config.Validate().ok()) << config.Validate().ToString();
  EdgeArrays full = BuildEdges(social_);
  edge_offsets_ = full.offsets;
  edge_sources_ = full.sources;
  edge_targets_ = full.targets;
  active_edges_ = std::move(full);

  util::Rng rng(config.seed);
  const uint32_t d = config.embedding_dim;
  user_emb_ = params_.CreateGaussian("user_emb", num_users_, d,
                                     config.init_stddev, &rng);
  item_emb_ = params_.CreateGaussian("item_emb", num_items_, d,
                                     config.init_stddev, &rng);
  for (uint32_t layer = 0; layer < config.num_layers; ++layer) {
    layer_weights_.push_back(params_.CreateXavier(
        util::StrFormat("gat_w%u", layer + 1), d, d, &rng));
    edge_attn_src_.push_back(params_.CreateXavier(
        util::StrFormat("gat_a_src%u", layer + 1), d, 1, &rng));
    edge_attn_tgt_.push_back(params_.CreateXavier(
        util::StrFormat("gat_a_tgt%u", layer + 1), d, 1, &rng));
  }
  if (config.aggregation == LayerAggregation::kAttention) {
    attn_proj_user_ = params_.CreateXavier("gat_attn_p_u", d, d, &rng);
    attn_proj_output_ = params_.CreateXavier("gat_attn_p_o", d, d, &rng);
    attn_vector_ = params_.CreateXavier("gat_attn_h", d, 1, &rng);
  } else {
    attn_proj_user_ = attn_proj_output_ = attn_vector_ = nullptr;
  }
}

void HosrGat::OnEpochBegin(uint32_t epoch, util::Rng* rng) {
  (void)epoch;
  if (config_.graph_dropout <= 0.0f) return;
  const graph::SocialGraph thinned =
      graph::GraphDropout(social_, config_.graph_dropout, rng);
  active_edges_ = BuildEdges(thinned);
}

Value HosrGat::GatLayer(autograd::Tape* tape, Value h, size_t layer,
                        const EdgeArrays& edges, bool training) {
  Value hw = tape->MatMul(h, tape->Param(layer_weights_[layer]));
  Value src_feat = tape->GatherRows(hw, edges.sources);
  Value tgt_feat = tape->GatherRows(hw, edges.targets);
  Value scores = tape->LeakyRelu(
      tape->Add(tape->MatMul(src_feat, tape->Param(edge_attn_src_[layer])),
                tape->MatMul(tgt_feat, tape->Param(edge_attn_tgt_[layer]))),
      config_.leaky_slope);
  Value alpha = tape->SegmentSoftmax(scores, edges.offsets);
  Value aggregated = tape->SegmentWeightedSum(alpha, tgt_feat, edges.offsets);
  Value activated = tape->Tanh(aggregated);
  return tape->Dropout(activated, config_.embedding_dropout, training,
                       &dropout_rng_);
}

Value HosrGat::UserRepresentation(autograd::Tape* tape, bool training) {
  // Full-graph edges at inference; epoch-thinned edges while training.
  EdgeArrays inference_edges;
  const EdgeArrays* edges = &active_edges_;
  if (!training) {
    inference_edges.offsets = edge_offsets_;
    inference_edges.sources = edge_sources_;
    inference_edges.targets = edge_targets_;
    edges = &inference_edges;
  }

  Value u0 = tape->Param(user_emb_);
  std::vector<Value> layers;
  layers.reserve(config_.num_layers);
  Value h = u0;
  for (uint32_t layer = 0; layer < config_.num_layers; ++layer) {
    obs::ScopedSpan span(obs::IndexedSpanName("hosr_gat/layer_", layer + 1));
    h = GatLayer(tape, h, layer, *edges, training);
    layers.push_back(h);
  }

  Value aggregated;
  switch (config_.aggregation) {
    case LayerAggregation::kLast:
      aggregated = layers.back();
      break;
    case LayerAggregation::kAverage: {
      Value acc = layers[0];
      for (size_t l = 1; l < layers.size(); ++l) {
        acc = tape->Add(acc, layers[l]);
      }
      aggregated = tape->Scale(acc, 1.0f / static_cast<float>(layers.size()));
      break;
    }
    case LayerAggregation::kAttention: {
      if (layers.size() == 1) {
        aggregated = layers[0];
        break;
      }
      Value projected = tape->MatMul(u0, tape->Param(attn_proj_user_));
      Value p_o = tape->Param(attn_proj_output_);
      Value h_vec = tape->Param(attn_vector_);
      Value scores;
      for (size_t l = 0; l < layers.size(); ++l) {
        Value hidden =
            tape->Relu(tape->Add(projected, tape->MatMul(layers[l], p_o)));
        Value a_l = tape->MatMul(hidden, h_vec);
        scores = l == 0 ? a_l : tape->ConcatCols(scores, a_l);
      }
      Value weights = tape->RowSoftmax(scores);
      for (size_t l = 0; l < layers.size(); ++l) {
        Value weighted =
            tape->BroadcastColMul(layers[l], tape->SliceCols(weights, l, 1));
        aggregated = l == 0 ? weighted : tape->Add(aggregated, weighted);
      }
      break;
    }
  }

  if (config_.item_implicit_term) {
    Value implicit =
        tape->SpMM(&item_term_, &item_term_t_, tape->Param(item_emb_));
    aggregated = tape->Add(aggregated, implicit);
  }
  return aggregated;
}

Value HosrGat::ScorePairs(autograd::Tape* tape,
                          const std::vector<uint32_t>& users,
                          const std::vector<uint32_t>& items, bool training) {
  Value rep = UserRepresentation(tape, training);
  Value u = tape->GatherRows(rep, users);
  Value v = tape->GatherRows(tape->Param(item_emb_), items);
  return tape->RowDot(u, v);
}

Value HosrGat::BuildLoss(autograd::Tape* tape, const data::BprBatch& batch,
                         util::Rng* rng) {
  (void)rng;
  Value rep = UserRepresentation(tape, /*training=*/true);
  Value u = tape->GatherRows(rep, batch.users);
  Value item_param = tape->Param(item_emb_);
  Value pos = tape->RowDot(u, tape->GatherRows(item_param, batch.pos_items));
  Value neg = tape->RowDot(u, tape->GatherRows(item_param, batch.neg_items));
  return tape->Scale(tape->Mean(tape->LogSigmoid(tape->Sub(pos, neg))),
                     -1.0f);
}

void HosrGat::BuildSharedForward(models::SharedForward* shared,
                                 const data::BprBatch& batch,
                                 util::Rng* rng) {
  (void)batch;
  (void)rng;
  shared->outputs.push_back(
      UserRepresentation(&shared->tape, /*training=*/true));
}

Value HosrGat::BuildLossSlice(autograd::Tape* tape,
                              const models::SharedForward& shared,
                              const data::BprBatch& batch, size_t begin,
                              size_t end, util::Rng* slice_rng) {
  (void)slice_rng;
  // Mirrors BuildLoss's tail (see Hosr::BuildLossSlice for the contract).
  Value rep = tape->SparseShared(0, &shared.outputs[0].value());
  Value u = tape->GatherRows(rep, models::SliceOf(batch.users, begin, end));
  Value item_param = tape->SparseParam(item_emb_);
  Value pos = tape->RowDot(
      u, tape->GatherRows(item_param,
                          models::SliceOf(batch.pos_items, begin, end)));
  Value neg = tape->RowDot(
      u, tape->GatherRows(item_param,
                          models::SliceOf(batch.neg_items, begin, end)));
  const float scale = -1.0f / static_cast<float>(batch.size());
  return tape->Scale(tape->Sum(tape->LogSigmoid(tape->Sub(pos, neg))), scale);
}

Matrix HosrGat::ScoreAllItems(const std::vector<uint32_t>& users) {
  // Inference goes through the tape (no dropout, full graph) — the GAT
  // forward has no lighter closed form worth duplicating.
  autograd::Tape tape;
  Value rep = UserRepresentation(&tape, /*training=*/false);
  const Matrix gathered = tensor::GatherRows(rep.value(), users);
  Matrix scores(users.size(), num_items_);
  tensor::Gemm(gathered, false, item_emb_->value, true, 1.0f, 0.0f, &scores);
  return scores;
}

std::vector<float> HosrGat::FirstLayerEdgeAttention() {
  autograd::Tape tape;
  Value hw =
      tape.MatMul(tape.Param(user_emb_), tape.Param(layer_weights_[0]));
  Value src_feat = tape.GatherRows(hw, edge_sources_);
  Value tgt_feat = tape.GatherRows(hw, edge_targets_);
  Value scores = tape.LeakyRelu(
      tape.Add(tape.MatMul(src_feat, tape.Param(edge_attn_src_[0])),
               tape.MatMul(tgt_feat, tape.Param(edge_attn_tgt_[0]))),
      config_.leaky_slope);
  Value alpha = tape.SegmentSoftmax(scores, edge_offsets_);
  std::vector<float> result(alpha.rows());
  for (size_t e = 0; e < result.size(); ++e) {
    result[e] = alpha.value()(e, 0);
  }
  if (obs::Enabled()) {
    auto& histogram = HOSR_HISTOGRAM("hosr_gat/edge_attn_weight");
    for (const float weight : result) histogram.Observe(weight);
  }
  return result;
}

}  // namespace hosr::core
