#include "net/stream.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/string_util.h"

namespace hosr::net {

uint32_t SampleZipfUser(util::Rng* rng, uint32_t num_users, double s) {
  if (s <= 0.0) return static_cast<uint32_t>(rng->UniformInt(num_users));
  const double n = static_cast<double>(num_users);
  const double u = rng->UniformDouble();
  const double x = std::pow((std::pow(n, 1.0 - s) - 1.0) * u + 1.0,
                            1.0 / (1.0 - s));
  const auto idx = static_cast<uint32_t>(x - 1.0);
  return std::min(idx, num_users - 1);
}

util::StatusOr<std::vector<StreamRequest>> LoadRequestScript(
    const std::string& path, uint32_t num_users, uint32_t default_k) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open requests: " + path);
  std::vector<StreamRequest> requests;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    uint32_t user = 0, k = default_k;
    const int fields = std::sscanf(line.c_str(), "%u %u", &user, &k);
    if (fields < 1 || user >= num_users || k == 0) {
      return util::Status::InvalidArgument(util::StrFormat(
          "bad request at %s:%zu: \"%s\"", path.c_str(), line_no,
          line.c_str()));
    }
    requests.push_back({user, k});
  }
  if (requests.empty()) {
    return util::Status::InvalidArgument("request file is empty: " + path);
  }
  return requests;
}

std::vector<StreamRequest> SyntheticStream(uint32_t num_users, size_t n,
                                           uint32_t k, double zipf,
                                           uint64_t seed) {
  util::Rng rng(seed);
  std::vector<StreamRequest> requests;
  requests.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    requests.push_back({SampleZipfUser(&rng, num_users, zipf), k});
  }
  return requests;
}

double PercentileUs(const std::vector<int64_t>& sorted_ns, double p) {
  if (sorted_ns.empty()) return 0.0;
  const auto rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted_ns.size())));
  const size_t idx = rank == 0 ? 0 : rank - 1;
  return static_cast<double>(
             sorted_ns[std::min(idx, sorted_ns.size() - 1)]) /
         1e3;
}

LatencySummary SummarizeLatencies(std::vector<int64_t>* ns) {
  LatencySummary summary;
  if (ns->empty()) return summary;
  std::sort(ns->begin(), ns->end());
  double sum = 0.0;
  for (const int64_t v : *ns) sum += static_cast<double>(v);
  summary.mean_us = sum / static_cast<double>(ns->size()) / 1e3;
  summary.p50_us = PercentileUs(*ns, 50.0);
  summary.p95_us = PercentileUs(*ns, 95.0);
  summary.p99_us = PercentileUs(*ns, 99.0);
  return summary;
}

void Outcomes::CountStatus(const util::Status& status) {
  switch (status.code()) {
    case util::StatusCode::kDeadlineExceeded:
      ++deadline_exceeded;
      break;
    case util::StatusCode::kResourceExhausted:
      ++shed;
      break;
    default:
      ++error;
      break;
  }
}

Outcomes& Outcomes::operator+=(const Outcomes& other) {
  ok += other.ok;
  degraded += other.degraded;
  deadline_exceeded += other.deadline_exceeded;
  shed += other.shed;
  error += other.error;
  return *this;
}

}  // namespace hosr::net
