#ifndef HOSR_NET_STREAM_H_
#define HOSR_NET_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/hardened.h"
#include "util/random.h"
#include "util/statusor.h"

namespace hosr::net {

// Request-stream generation and outcome/latency accounting shared by the
// in-process replay driver (tools/hosr_serve.cpp) and the remote load
// generator (tools/hosr_loadgen.cc), so both replay bit-identical streams
// and report the same JSON shapes.

struct StreamRequest {
  uint32_t user;
  uint32_t k;
};

// Approximate bounded-Zipf sampler via inverse-CDF of the continuous
// analog: heavy head, long tail, exponent `s` in [0, 1). s == 0 is uniform.
uint32_t SampleZipfUser(util::Rng* rng, uint32_t num_users, double s);

// Parses a scripted stream: one "user [k]" pair per line, '#' comments and
// blank lines skipped. Rejects users >= num_users, k == 0, and empty files.
util::StatusOr<std::vector<StreamRequest>> LoadRequestScript(
    const std::string& path, uint32_t num_users, uint32_t default_k);

// `n` zipf-skewed requests from a fresh Rng(seed) — the synthetic stream.
// Same (seed, num_users, zipf, k, n) always yields the same stream, which
// is what lets a remote loadgen replay exactly what hosr_serve replays.
std::vector<StreamRequest> SyntheticStream(uint32_t num_users, size_t n,
                                           uint32_t k, double zipf,
                                           uint64_t seed);

// Exact percentile (nearest-rank) over an ascending-sorted latency vector,
// reported in microseconds.
double PercentileUs(const std::vector<int64_t>& sorted_ns, double p);

// mean/p50/p95/p99 over one run's latencies. Sorts `ns` in place.
struct LatencySummary {
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};
LatencySummary SummarizeLatencies(std::vector<int64_t>* ns);

// Per-thread outcome tally, summed after the replay joins. Both drivers
// count with it, so "shed" means ResourceExhausted whether it came from the
// batcher queue or the network accept queue.
struct Outcomes {
  uint64_t ok = 0;
  uint64_t degraded = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t shed = 0;
  uint64_t error = 0;

  void Count(const util::StatusOr<serve::ServeResponse>& response) {
    if (response.ok()) {
      response->degraded ? ++degraded : ++ok;
      return;
    }
    CountStatus(response.status());
  }

  // The network client's view: success is (ok(), degraded flag) from the
  // decoded response rather than a ServeResponse.
  void CountOk(bool is_degraded) { is_degraded ? ++degraded : ++ok; }
  void CountStatus(const util::Status& status);

  uint64_t total() const {
    return ok + degraded + deadline_exceeded + shed + error;
  }

  Outcomes& operator+=(const Outcomes& other);
};

}  // namespace hosr::net

#endif  // HOSR_NET_STREAM_H_
