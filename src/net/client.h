#ifndef HOSR_NET_CLIENT_H_
#define HOSR_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "util/statusor.h"

namespace hosr::net {

// Blocking client for the hosr::net wire protocol (net/wire.h). One client
// owns one persistent connection; requests on it are answered in order.
// Not thread-safe — use one client per thread (the loadgen model) or
// serialize calls externally.
//
// Every wire or protocol failure surfaces as a util::Status:
//   DeadlineExceeded  read/write timed out (or the server answered that the
//                     request's deadline_ms expired)
//   Unavailable       connection closed by peer / server shedding or draining
//   IoError           other socket errors
// After a non-OK Query()/Info() the connection state is unknown; callers
// should Reconnect() or discard the client.
class NetClient {
 public:
  struct Options {
    int connect_timeout_ms = 5000;
    int read_timeout_ms = 30000;
    int write_timeout_ms = 10000;
  };

  // One served ranking as it crossed the wire.
  struct QueryResult {
    std::vector<uint32_t> items;  // best first
    std::vector<float> scores;    // parallel to items
    bool served_from_cache = false;
    bool degraded = false;
  };

  // Connects (with connect_timeout_ms) and arms the per-socket timeouts.
  static util::StatusOr<NetClient> Connect(const std::string& host, int port,
                                           Options options);
  static util::StatusOr<NetClient> Connect(const std::string& host, int port);

  NetClient(NetClient&&) = default;
  NetClient& operator=(NetClient&&) = default;

  // Sends one query and blocks for its reply. deadline_ms == 0 means no
  // deadline; non-zero rides the wire and is enforced server-side against
  // the engine's per-block checks. A non-OK server status code comes back
  // as that same Status (e.g. OutOfRange for a bad user id).
  util::StatusOr<QueryResult> Query(uint32_t user, uint32_t k,
                                    uint64_t trace_id = 0,
                                    uint32_t deadline_ms = 0);

  // Fetches the server's model metadata (dimensions, name).
  util::StatusOr<ServerInfo> Info();

  // Drops the current connection and dials again (same host/port/options).
  util::Status Reconnect();

  bool connected() const { return fd_.get() >= 0; }

 private:
  NetClient(std::string host, int port, Options options, ScopedFd fd)
      : host_(std::move(host)), port_(port), options_(options),
        fd_(std::move(fd)) {}

  // Writes `frame`, reads one frame back, and checks it has `expect` type.
  util::StatusOr<Frame> RoundTrip(const std::string& frame,
                                        FrameType expect);

  std::string host_;
  int port_ = 0;
  Options options_;
  ScopedFd fd_;
};

}  // namespace hosr::net

#endif  // HOSR_NET_CLIENT_H_
