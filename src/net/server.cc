#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>

#include "fault/fault.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace hosr::net {

namespace {

// Idle-wait slice between frames; bounds how long a worker takes to notice
// a drain while parked on a quiet persistent connection.
constexpr int kIdlePollMs = 100;

std::string ErrorResponseFrame(const util::Status& status) {
  QueryResponse response;
  response.status_code = static_cast<uint32_t>(status.code());
  response.message = status.message();
  return EncodeFrame(FrameType::kQueryReply,
                           EncodeQueryResponse(response));
}

}  // namespace

NetServer::NetServer(Options options) : options_(options) {
  HOSR_CHECK(options_.engine != nullptr || options_.manager != nullptr)
      << "NetServer needs an engine or a snapshot manager";
  HOSR_CHECK(options_.executor != nullptr || options_.batcher != nullptr ||
             options_.manager != nullptr)
      << "NetServer needs an executor, a batcher, or a snapshot manager";
  // The batcher holds one fixed engine for its lifetime; it cannot follow
  // a hot swap.
  HOSR_CHECK(options_.batcher == nullptr || options_.manager == nullptr)
      << "NetServer cannot combine a batcher with a snapshot manager";
  HOSR_CHECK(options_.worker_threads > 0);
}

NetServer::~NetServer() { Stop(); }

util::Status NetServer::Start() {
  if (started_) {
    return util::Status::FailedPrecondition("net server already started");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return util::Status::IoError(
        util::StrFormat("socket(): %s", std::strerror(errno)));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      options_.bind_any ? htonl(INADDR_ANY) : htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::IoError(util::StrFormat(
        "bind(%s:%d): %s", options_.bind_any ? "0.0.0.0" : "127.0.0.1",
        options_.port, error.c_str()));
  }
  if (listen(listen_fd_, 64) != 0) {
    const std::string error = std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::IoError(
        util::StrFormat("listen(): %s", error.c_str()));
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  &addr_len) != 0) {
    const std::string error = std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::IoError(
        util::StrFormat("getsockname(): %s", error.c_str()));
  }
  port_ = ntohs(addr.sin_port);
  stopping_.store(false, std::memory_order_relaxed);

  workers_.reserve(static_cast<size_t>(options_.worker_threads));
  for (int i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  // Pool size next to net/worker_busy_us: utilization = busy-rate /
  // (workers * 1e6) straight off a /timeseriez window.
  HOSR_GAUGE("net/worker_threads")
      .Set(static_cast<double>(options_.worker_threads));
  acceptor_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  HOSR_LOG(Info) << "net server listening on "
                 << (options_.bind_any ? "0.0.0.0" : "127.0.0.1") << ":"
                 << port_;
  return util::Status::Ok();
}

void NetServer::Stop() {
  if (!started_) return;
  started_ = false;
  stopping_.store(true, std::memory_order_relaxed);
  // Wake the blocked accept() so the acceptor can observe stopping_; new
  // connection attempts are refused from here on.
  shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  close(listen_fd_);
  listen_fd_ = -1;
  // Workers finish the frame they are serving (the answered-before-closed
  // guarantee), then exit without claiming queued connections. Taking the
  // queue mutex first closes the race with a worker between its predicate
  // check and going to sleep, which would otherwise miss this wakeup.
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Accepted-but-never-claimed connections carry no in-flight requests;
  // tell them the server is gone with a clean wire status, then close.
  std::deque<std::pair<int, int64_t>> leftover;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    leftover.swap(pending_);
  }
  const std::string drain_frame = ErrorResponseFrame(
      util::Status::Unavailable("server draining"));
  for (const auto& [fd, enqueue_ns] : leftover) {
    SetSendTimeoutMs(fd, options_.write_timeout_ms);
    (void)SendAll(fd, drain_frame);
    close(fd);
  }
}

NetServer::Stats NetServer::GetStats() const {
  Stats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.delay_shed = delay_shed_.load(std::memory_order_relaxed);
  stats.breaker_rejected = breaker_rejected_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.responses = responses_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  stats.read_timeouts = read_timeouts_.load(std::memory_order_relaxed);
  stats.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  stats.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  return stats;
}

void NetServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      if (errno == EINTR) continue;
      return;  // listener socket is gone
    }
    // Injected accept failures, accept-queue overload, and queue-delay
    // admission shed identically: one clean status frame on the wire, then
    // close — a remote client sees admission control, not a hang or a
    // reset.
    util::Status verdict = fault::Inject("net.accept");
    if (verdict.ok()) {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (pending_.empty()) {
        // Workers are keeping up right now: whatever wait the last storm
        // produced, this connection will not see it. Forget fast so a
        // stale estimate cannot shed the first request of a quiet period.
        queue_delay_.Decay();
      }
      if (options_.max_queue_delay_ms > 0.0 &&
          queue_delay_.value_ms() > options_.max_queue_delay_ms) {
        verdict = util::Status::ResourceExhausted(util::StrFormat(
            "queue delay %.1fms exceeds %.1fms bound",
            queue_delay_.value_ms(), options_.max_queue_delay_ms));
        delay_shed_.fetch_add(1, std::memory_order_relaxed);
        HOSR_COUNTER("net/delay_shed").Increment();
      } else if (pending_.size() >= options_.max_pending_conns) {
        verdict = util::Status::ResourceExhausted(util::StrFormat(
            "accept queue full (%zu connections pending)",
            pending_.size()));
      } else {
        pending_.emplace_back(fd, obs::NowNanos());
      }
    }
    if (!verdict.ok()) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      HOSR_COUNTER("net/shed").Increment();
      SetSendTimeoutMs(fd, options_.write_timeout_ms);
      (void)SendAll(fd, ErrorResponseFrame(verdict));
      close(fd);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    HOSR_COUNTER("net/connections").Increment();
    queue_cv_.notify_one();
  }
}

void NetServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) ||
               !pending_.empty();
      });
      if (stopping_.load(std::memory_order_relaxed)) return;
      const auto [claimed, enqueue_ns] = pending_.front();
      pending_.pop_front();
      fd = claimed;
      const double waited_ms =
          static_cast<double>(obs::NowNanos() - enqueue_ns) / 1e6;
      queue_delay_.Record(waited_ms);
      HOSR_GAUGE("net/queue_delay_ms").Set(queue_delay_.value_ms());
    }
    ServeConnection(fd);
    close(fd);
  }
}

void NetServer::ServeConnection(int fd) {
  SetRecvTimeoutMs(fd, options_.read_timeout_ms);
  SetSendTimeoutMs(fd, options_.write_timeout_ms);
  for (;;) {
    // Between frames, wait in short slices so a drain is noticed quickly.
    // During a drain, already-arrived frames (0ms poll) are still served —
    // that is the in-flight-requests-complete half of graceful drain — but
    // the connection no longer waits for new ones.
    const bool draining = stopping_.load(std::memory_order_relaxed);
    auto readable = WaitReadable(fd, draining ? 0 : kIdlePollMs);
    if (!readable.ok()) return;
    if (!readable.value()) {
      if (draining) return;
      continue;
    }
    if (!ServeOneFrame(fd)) return;
  }
}

bool NetServer::WriteResponseFrame(int fd, const std::string& frame_bytes) {
  // net.write faults model a dead downstream link: nothing can be said to
  // the peer, so the connection just drops.
  if (!fault::Inject("net.write").ok()) return false;
  if (!SendAll(fd, frame_bytes).ok()) return false;
  bytes_written_.fetch_add(frame_bytes.size(), std::memory_order_relaxed);
  HOSR_COUNTER("net/bytes_written").Increment(frame_bytes.size());
  return true;
}

bool NetServer::ServeOneFrame(int fd) {
  // net.read faults fire before the frame is consumed; the stream position
  // is then unknowable, so the injected status is answered and the
  // connection closed — the client sees a clean error, never a desync.
  if (const util::Status injected = fault::Inject("net.read");
      !injected.ok()) {
    (void)WriteResponseFrame(fd, ErrorResponseFrame(injected));
    return false;
  }
  bool clean_eof = false;
  auto frame = ReadFrame(fd, &clean_eof);
  if (!frame.ok()) {
    if (clean_eof) return false;  // normal end of a persistent connection
    const util::StatusCode code = frame.status().code();
    if (code == util::StatusCode::kDeadlineExceeded) {
      // Slow-loris: the peer started a frame but never finished it within
      // read_timeout_ms; cut it off so the worker frees up.
      read_timeouts_.fetch_add(1, std::memory_order_relaxed);
      HOSR_COUNTER("net/read_timeouts").Increment();
    } else if (code != util::StatusCode::kUnavailable) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      HOSR_COUNTER("net/protocol_errors").Increment();
    }
    (void)WriteResponseFrame(fd, ErrorResponseFrame(frame.status()));
    return false;
  }
  bytes_read_.fetch_add(kFrameHeaderSize + frame->payload.size(),
                        std::memory_order_relaxed);
  HOSR_COUNTER("net/bytes_read")
      .Increment(kFrameHeaderSize + frame->payload.size());

  // One atomic load pins this frame's serving generation: everything below
  // — ranking, fallback, scores, cache key — comes from this state even if
  // a hot swap lands mid-request. The shared_ptr keeps the old engine
  // alive until the response is on the wire.
  std::shared_ptr<const serve::ServingState> state;
  const serve::InferenceEngine* engine = options_.engine;
  const serve::HardenedExecutor* executor = options_.executor;
  uint64_t generation = 0;
  if (options_.manager != nullptr) {
    state = options_.manager->Acquire();
    engine = &state->engine();
    executor = &state->executor();
    generation = state->version();
  }

  switch (static_cast<FrameType>(frame->type)) {
    case FrameType::kInfo: {
      ServerInfo info;
      info.num_users = engine->num_users();
      info.num_items = engine->num_items();
      info.dim = engine->dim();
      info.model_name = engine->snapshot().model_name;
      return WriteResponseFrame(
          fd, EncodeFrame(FrameType::kInfoReply,
                                EncodeServerInfo(info)));
    }
    case FrameType::kQuery:
      break;  // handled below
    default:
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      HOSR_COUNTER("net/protocol_errors").Increment();
      (void)WriteResponseFrame(
          fd, ErrorResponseFrame(util::Status::InvalidArgument(
                  util::StrFormat("unknown frame type %u", frame->type))));
      return false;
  }

  auto request = DecodeQueryRequest(frame->payload);
  if (!request.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    HOSR_COUNTER("net/protocol_errors").Increment();
    (void)WriteResponseFrame(fd, ErrorResponseFrame(request.status()));
    return false;
  }

  requests_.fetch_add(1, std::memory_order_relaxed);
  HOSR_COUNTER("net/requests").Increment();
  const int64_t begin_ns = obs::NowNanos();

  if (options_.breaker != nullptr && !options_.breaker->Admit()) {
    // Fast-fail without touching the backend; the connection stays open —
    // the peer got a clean answer, not a drop. Breaker rejections are NOT
    // reported as outcomes (they would pin the window at 100% failure).
    breaker_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (!WriteResponseFrame(
            fd, ErrorResponseFrame(util::Status::ResourceExhausted(
                    "circuit breaker open")))) {
      return false;
    }
    responses_.fetch_add(1, std::memory_order_relaxed);
    HOSR_COUNTER("net/responses").Increment();
    return true;
  }

  // The wire trace id scopes every span/exemplar this request produces —
  // and doubles as the fault token, so injected engine outcomes are a pure
  // function of the request stream, independent of which worker runs it.
  const obs::ScopedRequestContext request_scope(
      obs::RequestContext{request->trace_id, request->user, request->k});
  const uint64_t token = request->trace_id != 0
                             ? request->trace_id
                             : requests_.load(std::memory_order_relaxed);
  const serve::Deadline deadline =
      request->deadline_ms > 0
          ? std::chrono::steady_clock::now() +
                std::chrono::milliseconds(request->deadline_ms)
          : serve::kNoDeadline;

  util::StatusOr<serve::ServeResponse> served =
      util::Status::Internal("unreached");
  bool from_cache = false;
  {
    HOSR_TRACE_SPAN("net/request");
    if (options_.batcher != nullptr) {
      served = options_.batcher->Submit(request->user, request->k, deadline)
                   .get();
    } else {
      if (options_.cache != nullptr) {
        if (auto hit =
                options_.cache->Get(request->user, request->k, generation)) {
          served = serve::ServeResponse{std::move(*hit), /*degraded=*/false};
          from_cache = true;
        }
      }
      if (!from_cache) {
        served = executor->Execute(request->user, request->k, token,
                                   deadline);
        if (served.ok() && !served->degraded && options_.cache != nullptr) {
          options_.cache->Put(request->user, request->k, served->items,
                              generation);
        }
      }
    }
  }
  if (options_.breaker != nullptr) {
    options_.breaker->ReportOutcome(/*failed=*/!served.ok());
  }

  QueryResponse response;
  if (served.ok()) {
    response.status_code = static_cast<uint32_t>(util::StatusCode::kOk);
    if (from_cache) response.flags |= kResponseFromCache;
    if (served->degraded) response.flags |= kResponseDegraded;
    response.items = std::move(served->items);
    response.scores.reserve(response.items.size());
    for (const uint32_t item : response.items) {
      response.scores.push_back(
          engine->snapshot().Score(request->user, item));
    }
  } else {
    response.status_code = static_cast<uint32_t>(served.status().code());
    response.message = served.status().message();
  }
  HOSR_HISTOGRAM("net/request_latency_ms")
      .Observe(static_cast<double>(obs::NowNanos() - begin_ns) / 1e6);
  // Cumulative worker-busy time across the pool; the timeseries recorder
  // turns it into a windowed utilization history for serving dashboards.
  HOSR_COUNTER("net/worker_busy_us")
      .Increment(
          static_cast<uint64_t>((obs::NowNanos() - begin_ns) / 1000));

  if (!WriteResponseFrame(
          fd, EncodeFrame(FrameType::kQueryReply,
                                EncodeQueryResponse(response)))) {
    return false;
  }
  responses_.fetch_add(1, std::memory_order_relaxed);
  HOSR_COUNTER("net/responses").Increment();
  return true;
}

}  // namespace hosr::net
