#ifndef HOSR_NET_SOCKET_H_
#define HOSR_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"
#include "util/statusor.h"

namespace hosr::net {

// Low-level blocking-socket helpers shared by the hosr::net wire layer and
// the obs admin endpoint (docs/SERVING.md "Network serving"). All calls are
// plain POSIX sockets — no external dependencies — and every failure comes
// back as a util::Status:
//
//   DeadlineExceeded  the configured socket timeout expired mid-operation
//   Unavailable       the peer closed the connection
//   IoError           anything else the kernel reported
//
// Timeouts are per-operation (SO_RCVTIMEO / SO_SNDTIMEO), so a stalled or
// malicious peer can pin a thread for at most one timeout interval.

// Owns a file descriptor and closes it on destruction. Movable, not
// copyable; release() transfers ownership out.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { reset(); }

  ScopedFd(ScopedFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

// Resolves `host` to an IPv4 address in network byte order. Accepts dotted
// quads ("10.0.0.7") and the literal "localhost"; anything else is
// InvalidArgument — deliberately no DNS, so a typo cannot stall a request
// thread on a resolver.
util::StatusOr<uint32_t> ResolveIPv4(const std::string& host);

// Connects to host:port with a bounded connect timeout (non-blocking
// connect + poll; the returned fd is back in blocking mode). The caller
// owns the fd.
util::StatusOr<int> ConnectTcp(const std::string& host, int port,
                               int connect_timeout_ms);

// Bounds a single recv()/send() on `fd`; 0 or negative disables the bound.
void SetRecvTimeoutMs(int fd, int timeout_ms);
void SetSendTimeoutMs(int fd, int timeout_ms);

// Writes all of `data`, retrying partial writes. SIGPIPE is suppressed
// (MSG_NOSIGNAL); a closed peer surfaces as Unavailable.
util::Status SendAll(int fd, std::string_view data);

// Reads exactly `size` bytes into `buffer`. A peer close mid-buffer is
// Unavailable ("connection closed"); a timeout is DeadlineExceeded.
util::Status RecvExact(int fd, void* buffer, size_t size);

// Like RecvExact, but a clean close before the FIRST byte returns false
// (the idle-connection end-of-stream case, not an error). A close after
// one or more bytes of `size` still fails with Unavailable.
util::StatusOr<bool> RecvExactOrClosed(int fd, void* buffer, size_t size);

// Waits up to `timeout_ms` for `fd` to become readable. Returns true when
// readable (or the peer closed — the next read resolves which), false on
// timeout; IoError for poll failures.
util::StatusOr<bool> WaitReadable(int fd, int timeout_ms);

}  // namespace hosr::net

#endif  // HOSR_NET_SOCKET_H_
