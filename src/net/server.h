#ifndef HOSR_NET_SERVER_H_
#define HOSR_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "serve/batcher.h"
#include "serve/cache.h"
#include "serve/engine.h"
#include "serve/hardened.h"
#include "serve/overload.h"
#include "serve/reload.h"
#include "util/status.h"

namespace hosr::net {

// TCP serving front end over the in-process inference stack: one acceptor
// thread plus a fixed worker pool speaking the hosr::net wire protocol
// (net/wire.h) on persistent connections. Each worker owns one connection
// at a time and serves its frames in order until the peer disconnects, a
// protocol error desynchronizes the stream, or the server drains — so the
// pool size bounds concurrently-served connections; further accepted
// connections wait FIFO in the pending queue.
//
// Request path: a kQuery frame's deadline_ms becomes an absolute deadline
// at decode time and the request runs under obs::ScopedRequestContext
// (trace_id from the wire) through either the RequestBatcher (when
// configured) or the ResultCache + HardenedExecutor — the same pipeline
// the in-process replay drives, so network answers are bit-identical to
// InferenceEngine::TopKForUser. Response scores come from
// ModelSnapshot::Score over the returned ids.
//
// Overload: when the pending queue is at max_pending_conns (or the
// net.accept fault point fires) the acceptor sheds the connection on the
// wire — one ResourceExhausted response frame, then close — so remote
// clients see admission control as a clean status, exactly like the
// batcher's queue shedding. Two adaptive layers stack on top of that
// fixed bound (docs/ROBUSTNESS.md "Hot reload & overload control"):
//   - queue-delay admission: the acceptor tracks a QueueDelayEwma of how
//     long claimed connections actually waited for a worker; when the
//     smoothed wait exceeds max_queue_delay_ms, new connections shed at
//     the wire with ResourceExhausted *before* joining the queue — a
//     connection whose queue wait alone implies a deadline miss is
//     refused instead of slow-failed;
//   - circuit breaker: when Options::breaker is set, each query frame
//     passes CircuitBreaker::Admit() before executing; a rejected request
//     is answered ResourceExhausted on the wire (connection stays open)
//     and every executed request's outcome feeds the breaker window, so
//     a sustained failure storm trips it into fast-fail until half-open
//     probes prove the backend recovered.
//
// Hot swap: with Options::manager set, every frame acquires the current
// ServingState (one atomic shared_ptr load) and serves entirely from that
// state's engine + executor; the cache is keyed by the state's snapshot
// version. A snapshot swap between two frames of one connection is
// seamless — the in-flight frame finishes on the state it acquired.
//
// Graceful drain: Stop() refuses new accepts, completes (and answers)
// every request already read off a socket, lets each worker finish the
// frame it is parsing, then closes all connections and joins all threads.
// Stats().requests == Stats().responses after Stop() is the zero-dropped-
// in-flight guarantee the net_smoke test asserts.
//
// Fault points: net.accept (per accepted connection), net.read (per frame
// read; an injected status is answered on the wire and the connection
// closed) and net.write (per response write; an injected failure drops the
// connection) — all in the process-global fault::FaultRegistry.
class NetServer {
 public:
  struct Options {
    int port = 0;             // 0 = kernel-assigned ephemeral port
    bool bind_any = false;    // false: loopback only; true: 0.0.0.0
    int worker_threads = 4;   // concurrently served persistent connections
    // Accepted-but-unclaimed connections allowed to wait for a worker;
    // beyond this the acceptor sheds on the wire (ResourceExhausted).
    size_t max_pending_conns = 64;
    // Per-socket operation bounds. read_timeout_ms caps how long a worker
    // waits for the REST of a frame once its first byte arrived (the
    // slow-loris bound); idle waits between frames poll in short slices so
    // drain stays responsive.
    int read_timeout_ms = 30000;
    int write_timeout_ms = 10000;

    // Serving pipeline (all borrowed, must outlive the server). Exactly
    // one of batcher/executor is used per request: batcher when non-null,
    // else cache (optional) + executor.
    const serve::InferenceEngine* engine = nullptr;   // required unless manager
    const serve::HardenedExecutor* executor = nullptr;  // required unless batcher/manager
    serve::RequestBatcher* batcher = nullptr;
    serve::ResultCache* cache = nullptr;

    // Hot-swap source: when set, every frame serves from
    // manager->Acquire() instead of the fixed engine/executor (which may
    // then be null). Incompatible with batcher, which holds a fixed
    // engine for its lifetime.
    const serve::SnapshotManager* manager = nullptr;

    // Per-request circuit breaker; null disables. Borrowed.
    serve::CircuitBreaker* breaker = nullptr;

    // Queue-delay admission bound: when > 0 and the smoothed worker-claim
    // wait exceeds this many milliseconds, the acceptor sheds new
    // connections with ResourceExhausted. 0 disables.
    double max_queue_delay_ms = 0.0;
  };

  explicit NetServer(Options options);
  ~NetServer();  // Stop()s if still running

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Binds and starts the acceptor + workers.
  util::Status Start();

  // Graceful drain (see above). Idempotent; blocks until every in-flight
  // request has been answered and all threads joined.
  void Stop();

  // The bound port (resolves Options::port == 0); valid after Start().
  int port() const { return port_; }

  // Monotonic totals since Start(), also mirrored as net/* obs metrics.
  struct Stats {
    uint64_t accepted = 0;         // connections handed to the worker pool
    uint64_t shed = 0;             // connections refused with ResourceExhausted
    uint64_t delay_shed = 0;       // subset of shed: queue-delay admission
    uint64_t breaker_rejected = 0; // query frames fast-failed by the breaker
    uint64_t requests = 0;         // query frames fully read
    uint64_t responses = 0;        // response frames fully written
    uint64_t protocol_errors = 0;  // malformed frames / bad payloads
    uint64_t read_timeouts = 0;    // slow-loris reads cut off
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
  };
  Stats GetStats() const;

 private:
  void AcceptLoop();
  void WorkerLoop();
  // Serves one persistent connection until close/error/drain.
  void ServeConnection(int fd);
  // Reads, executes, and answers a single frame. Returns false when the
  // connection must close (peer gone, protocol error, injected fault).
  bool ServeOneFrame(int fd);
  bool WriteResponseFrame(int fd, const std::string& frame_bytes);

  Options options_;
  int listen_fd_ = -1;
  int port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopping_{false};

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  // (fd, enqueue nanos) — the timestamp feeds the queue-delay estimator
  // when a worker claims the connection.
  std::deque<std::pair<int, int64_t>> pending_;
  serve::QueueDelayEwma queue_delay_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> delay_shed_{0};
  std::atomic<uint64_t> breaker_rejected_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> responses_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> read_timeouts_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
};

}  // namespace hosr::net

#endif  // HOSR_NET_SERVER_H_
