#include "net/client.h"

#include <utility>

#include "util/string_util.h"

namespace hosr::net {

util::StatusOr<NetClient> NetClient::Connect(const std::string& host,
                                             int port) {
  return Connect(host, port, Options{});
}

util::StatusOr<NetClient> NetClient::Connect(const std::string& host,
                                             int port, Options options) {
  auto fd = ConnectTcp(host, port, options.connect_timeout_ms);
  if (!fd.ok()) return fd.status();
  ScopedFd owned(fd.value());
  SetRecvTimeoutMs(owned.get(), options.read_timeout_ms);
  SetSendTimeoutMs(owned.get(), options.write_timeout_ms);
  return NetClient(host, port, options, std::move(owned));
}

util::Status NetClient::Reconnect() {
  fd_.reset();
  auto fresh = Connect(host_, port_, options_);
  if (!fresh.ok()) return fresh.status();
  *this = std::move(fresh).value();
  return util::Status::Ok();
}

util::StatusOr<Frame> NetClient::RoundTrip(const std::string& frame,
                                                 FrameType expect) {
  if (fd_.get() < 0) {
    return util::Status::FailedPrecondition("client is not connected");
  }
  if (util::Status sent = SendAll(fd_.get(), frame); !sent.ok()) {
    return sent;
  }
  bool clean_eof = false;
  auto reply = ReadFrame(fd_.get(), &clean_eof);
  if (!reply.ok()) {
    if (clean_eof) {
      return util::Status::Unavailable("connection closed by peer");
    }
    return reply.status();
  }
  if (reply->type != static_cast<uint16_t>(expect)) {
    return util::Status::InvalidArgument(util::StrFormat(
        "unexpected reply frame type %u (want %u)", reply->type,
        static_cast<unsigned>(expect)));
  }
  return reply;
}

util::StatusOr<NetClient::QueryResult> NetClient::Query(uint32_t user,
                                                        uint32_t k,
                                                        uint64_t trace_id,
                                                        uint32_t deadline_ms) {
  QueryRequest request;
  request.trace_id = trace_id;
  request.user = user;
  request.k = k;
  request.deadline_ms = deadline_ms;
  auto reply = RoundTrip(
      EncodeFrame(FrameType::kQuery,
                        EncodeQueryRequest(request)),
      FrameType::kQueryReply);
  if (!reply.ok()) return reply.status();
  auto response = DecodeQueryResponse(reply->payload);
  if (!response.ok()) return response.status();
  if (util::Status status = ResponseStatus(*response); !status.ok()) {
    return status;
  }
  QueryResult result;
  result.items = std::move(response->items);
  result.scores = std::move(response->scores);
  result.served_from_cache =
      (response->flags & kResponseFromCache) != 0;
  result.degraded = (response->flags & kResponseDegraded) != 0;
  return result;
}

util::StatusOr<ServerInfo> NetClient::Info() {
  auto reply = RoundTrip(EncodeFrame(FrameType::kInfo, {}),
                         FrameType::kInfoReply);
  if (!reply.ok()) return reply.status();
  return DecodeServerInfo(reply->payload);
}

}  // namespace hosr::net
