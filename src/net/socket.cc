#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/string_util.h"

namespace hosr::net {

namespace {

util::Status Errno(const char* what) {
  return util::Status::IoError(
      util::StrFormat("%s: %s", what, std::strerror(errno)));
}

bool IsTimeout(int err) { return err == EAGAIN || err == EWOULDBLOCK; }

}  // namespace

void ScopedFd::reset(int fd) {
  if (fd_ >= 0) close(fd_);
  fd_ = fd;
}

util::StatusOr<uint32_t> ResolveIPv4(const std::string& host) {
  if (host.empty() || host == "localhost") {
    return static_cast<uint32_t>(htonl(INADDR_LOOPBACK));
  }
  struct in_addr addr;
  if (inet_pton(AF_INET, host.c_str(), &addr) == 1) {
    return static_cast<uint32_t>(addr.s_addr);
  }
  return util::Status::InvalidArgument(
      "cannot resolve host (dotted-quad IPv4 or \"localhost\" only): " +
      host);
}

util::StatusOr<int> ConnectTcp(const std::string& host, int port,
                               int connect_timeout_ms) {
  if (port <= 0 || port > 65535) {
    return util::Status::InvalidArgument(
        util::StrFormat("bad port: %d", port));
  }
  uint32_t ip = 0;
  HOSR_ASSIGN_OR_RETURN(ip, ResolveIPv4(host));

  ScopedFd fd(socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket()");

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ip;
  addr.sin_port = htons(static_cast<uint16_t>(port));

  // Non-blocking connect bounded by poll(), then back to blocking mode so
  // subsequent reads/writes obey SO_RCVTIMEO/SO_SNDTIMEO instead.
  const int flags = fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 || fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  int rc = connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    return util::Status::Unavailable(util::StrFormat(
        "connect(%s:%d): %s", host.c_str(), port, std::strerror(errno)));
  }
  if (rc != 0) {
    struct pollfd pfd = {fd.get(), POLLOUT, 0};
    const int timeout = connect_timeout_ms > 0 ? connect_timeout_ms : -1;
    const int ready = poll(&pfd, 1, timeout);
    if (ready < 0) return Errno("poll(connect)");
    if (ready == 0) {
      return util::Status::DeadlineExceeded(util::StrFormat(
          "connect(%s:%d) timed out after %dms", host.c_str(), port,
          connect_timeout_ms));
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (so_error != 0) {
      return util::Status::Unavailable(util::StrFormat(
          "connect(%s:%d): %s", host.c_str(), port,
          std::strerror(so_error)));
    }
  }
  if (fcntl(fd.get(), F_SETFL, flags) < 0) return Errno("fcntl(restore)");

  // Request/response frames are tiny; batching them behind Nagle only adds
  // round-trip latency.
  const int one = 1;
  setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd.release();
}

namespace {

void SetTimevalOpt(int fd, int option, int timeout_ms) {
  struct timeval tv;
  if (timeout_ms <= 0) {
    tv.tv_sec = 0;
    tv.tv_usec = 0;  // zero timeval disables the bound
  } else {
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
  }
  setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

}  // namespace

void SetRecvTimeoutMs(int fd, int timeout_ms) {
  SetTimevalOpt(fd, SO_RCVTIMEO, timeout_ms);
}

void SetSendTimeoutMs(int fd, int timeout_ms) {
  SetTimevalOpt(fd, SO_SNDTIMEO, timeout_ms);
}

util::Status SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                           MSG_NOSIGNAL
#else
                           0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      if (IsTimeout(errno)) {
        return util::Status::DeadlineExceeded("send timed out");
      }
      if (errno == EPIPE || errno == ECONNRESET) {
        return util::Status::Unavailable("connection closed by peer");
      }
      return Errno("send()");
    }
    if (n == 0) return util::Status::Unavailable("connection closed by peer");
    sent += static_cast<size_t>(n);
  }
  return util::Status::Ok();
}

util::StatusOr<bool> RecvExactOrClosed(int fd, void* buffer, size_t size) {
  char* out = static_cast<char*>(buffer);
  size_t received = 0;
  while (received < size) {
    const ssize_t n = recv(fd, out + received, size - received, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (IsTimeout(errno)) {
        return util::Status::DeadlineExceeded(util::StrFormat(
            "recv timed out after %zu of %zu bytes", received, size));
      }
      if (errno == ECONNRESET) {
        return util::Status::Unavailable("connection reset by peer");
      }
      return Errno("recv()");
    }
    if (n == 0) {
      if (received == 0) return false;  // clean close at a message boundary
      return util::Status::Unavailable(util::StrFormat(
          "connection closed mid-read (%zu of %zu bytes)", received, size));
    }
    received += static_cast<size_t>(n);
  }
  return true;
}

util::Status RecvExact(int fd, void* buffer, size_t size) {
  bool got = false;
  HOSR_ASSIGN_OR_RETURN(got, RecvExactOrClosed(fd, buffer, size));
  if (!got) return util::Status::Unavailable("connection closed by peer");
  return util::Status::Ok();
}

util::StatusOr<bool> WaitReadable(int fd, int timeout_ms) {
  struct pollfd pfd = {fd, POLLIN, 0};
  for (;;) {
    const int ready = poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Errno("poll()");
    }
    return ready > 0;
  }
}

}  // namespace hosr::net
