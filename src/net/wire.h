#ifndef HOSR_NET_WIRE_H_
#define HOSR_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace hosr::net {

// The hosr::net wire protocol (docs/SERVING.md "Network serving"): versioned,
// length-prefixed binary frames over a plain TCP stream. Every frame is
//
//   offset  size  field
//        0     4  magic        0x48534E31 ("HSN1"), little-endian
//        4     2  version      protocol version (kWireVersion)
//        6     2  type         FrameType
//        8     4  payload_size bytes of payload that follow the header
//       12     4  payload_crc  CRC-32 (util::Crc32) of the payload bytes
//
// followed by exactly payload_size payload bytes. All integers are
// little-endian regardless of host order. Decoding is strict: a wrong
// magic, unsupported version, payload_size above kMaxPayload, or CRC
// mismatch is a clean Status error (never UB), and because the stream is
// desynchronized after any of them the connection must be closed.
//
// Requests and responses are order-matched per connection: the server
// answers frames in arrival order, so a response needs no request id on
// the wire (the request's trace_id still rides server-side through
// obs::RequestContext for spans and exemplars).

inline constexpr uint32_t kWireMagic = 0x48534E31;  // "HSN1"
inline constexpr uint16_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderSize = 16;
// Upper bound on a single payload: top-K responses are ~8 bytes per item,
// so 4 MiB covers K up to ~500k — far beyond any sane request — while
// bounding what a garbage length prefix can make a peer allocate.
inline constexpr uint32_t kMaxPayload = 4u << 20;

enum class FrameType : uint16_t {
  kQuery = 1,      // QueryRequest payload
  kQueryReply = 2, // QueryResponse payload
  kInfo = 3,       // empty payload; asks for the server's model metadata
  kInfoReply = 4,  // ServerInfo payload
};

// A decoded frame: type as sent (may be a value outside FrameType — the
// dispatch layer rejects unknown types) plus the CRC-verified payload.
struct Frame {
  uint16_t type = 0;
  std::string payload;
};

// Top-K query. deadline_ms is a relative client budget (0 = none) that the
// server converts to an absolute deadline at decode time and threads into
// the engine's per-block deadline checks. flags bits are reserved and
// ignored by version-1 servers.
struct QueryRequest {
  uint64_t trace_id = 0;
  uint32_t user = 0;
  uint32_t k = 0;
  uint32_t deadline_ms = 0;
  uint32_t flags = 0;
};

// QueryResponse.flags bits.
inline constexpr uint32_t kResponseFromCache = 1u << 0;
inline constexpr uint32_t kResponseDegraded = 1u << 1;

// Served ranking or error. status_code is the numeric util::StatusCode; on
// error items/scores are empty and message carries the status message.
struct QueryResponse {
  uint32_t status_code = 0;
  uint32_t flags = 0;
  std::vector<uint32_t> items;
  std::vector<float> scores;  // same length as items
  std::string message;
};

// kInfoReply payload: enough model metadata for a remote load generator to
// synthesize a valid request stream without local snapshot access.
struct ServerInfo {
  uint32_t num_users = 0;
  uint32_t num_items = 0;
  uint32_t dim = 0;
  std::string model_name;
};

// Frames `payload` with a header (type, size, CRC).
std::string EncodeFrame(FrameType type, std::string_view payload);

// Incremental decode from a receive buffer: returns the number of bytes
// consumed (> 0) with `*frame` filled, 0 when the buffer does not yet hold
// a complete frame (read more and retry), or a Status error for a stream
// that can never resync (bad magic/version/CRC, oversized length).
util::StatusOr<size_t> TryDecodeFrame(std::string_view buffer, Frame* frame);

// Payload (de)serializers. Decoders are strict: a payload whose size does
// not exactly match its declared contents is InvalidArgument.
std::string EncodeQueryRequest(const QueryRequest& request);
util::StatusOr<QueryRequest> DecodeQueryRequest(std::string_view payload);

std::string EncodeQueryResponse(const QueryResponse& response);
util::StatusOr<QueryResponse> DecodeQueryResponse(std::string_view payload);

std::string EncodeServerInfo(const ServerInfo& info);
util::StatusOr<ServerInfo> DecodeServerInfo(std::string_view payload);

// Reads exactly one frame from `fd` (header, then payload, then CRC
// verification). Transport statuses pass through from net::RecvExact*;
// `clean_eof` (optional) is set true when the peer closed cleanly before
// the first header byte — the normal end of a persistent connection.
util::StatusOr<Frame> ReadFrame(int fd, bool* clean_eof = nullptr);

// Convenience: status of a response decoded off the wire (OK when
// status_code is kOk, otherwise the code + message as a util::Status).
util::Status ResponseStatus(const QueryResponse& response);

}  // namespace hosr::net

#endif  // HOSR_NET_WIRE_H_
