#include "net/wire.h"

#include <cstring>

#include "net/socket.h"
#include "util/crc32.h"
#include "util/string_util.h"

namespace hosr::net {

namespace {

// Explicit little-endian packing so the wire format is identical across
// host byte orders (the snapshot format is native-order with an endian
// marker; a network protocol cannot assume both ends match).
void AppendU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void AppendF32(std::string* out, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU32(out, bits);
}

// Bounds-checked sequential reader over a payload. Every Read* returns
// false once the payload is exhausted; callers turn that into a clean
// InvalidArgument instead of reading past the buffer.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ReadU16(uint16_t* v) {
    if (data_.size() - pos_ < 2) return false;
    *v = static_cast<uint16_t>(Byte(0) | (Byte(1) << 8));
    pos_ += 2;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (data_.size() - pos_ < 4) return false;
    *v = Byte(0) | (Byte(1) << 8) | (Byte(2) << 16) | (Byte(3) << 24);
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    uint32_t lo = 0, hi = 0;
    if (!ReadU32(&lo) || !ReadU32(&hi)) return false;
    *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }
  bool ReadF32(float* v) {
    uint32_t bits = 0;
    if (!ReadU32(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool ReadBytes(size_t n, std::string* out) {
    if (data_.size() - pos_ < n) return false;
    out->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  uint32_t Byte(size_t offset) const {
    return static_cast<unsigned char>(data_[pos_ + offset]);
  }
  std::string_view data_;
  size_t pos_ = 0;
};

util::Status Malformed(const char* what) {
  return util::Status::InvalidArgument(
      util::StrFormat("malformed %s payload", what));
}

}  // namespace

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  AppendU32(&out, kWireMagic);
  AppendU16(&out, kWireVersion);
  AppendU16(&out, static_cast<uint16_t>(type));
  AppendU32(&out, static_cast<uint32_t>(payload.size()));
  AppendU32(&out, util::Crc32(payload));
  out.append(payload);
  return out;
}

util::StatusOr<size_t> TryDecodeFrame(std::string_view buffer, Frame* frame) {
  if (buffer.size() < kFrameHeaderSize) return size_t{0};
  Reader header(buffer.substr(0, kFrameHeaderSize));
  uint32_t magic = 0, payload_size = 0, payload_crc = 0;
  uint16_t version = 0, type = 0;
  header.ReadU32(&magic);
  header.ReadU16(&version);
  header.ReadU16(&type);
  header.ReadU32(&payload_size);
  header.ReadU32(&payload_crc);
  if (magic != kWireMagic) {
    return util::Status::InvalidArgument(util::StrFormat(
        "bad frame magic 0x%08x (want 0x%08x) — not a hosr_net stream",
        magic, kWireMagic));
  }
  if (version != kWireVersion) {
    return util::Status::InvalidArgument(util::StrFormat(
        "unsupported wire version %u (this build speaks %u)", version,
        kWireVersion));
  }
  if (payload_size > kMaxPayload) {
    return util::Status::InvalidArgument(util::StrFormat(
        "frame payload %u bytes exceeds the %u-byte limit", payload_size,
        kMaxPayload));
  }
  if (buffer.size() - kFrameHeaderSize < payload_size) return size_t{0};
  const std::string_view payload =
      buffer.substr(kFrameHeaderSize, payload_size);
  if (util::Crc32(payload) != payload_crc) {
    return util::Status::DataLoss(util::StrFormat(
        "frame payload CRC mismatch (got 0x%08x, want 0x%08x)",
        util::Crc32(payload), payload_crc));
  }
  frame->type = type;
  frame->payload.assign(payload);
  return kFrameHeaderSize + static_cast<size_t>(payload_size);
}

std::string EncodeQueryRequest(const QueryRequest& request) {
  std::string out;
  out.reserve(24);
  AppendU64(&out, request.trace_id);
  AppendU32(&out, request.user);
  AppendU32(&out, request.k);
  AppendU32(&out, request.deadline_ms);
  AppendU32(&out, request.flags);
  return out;
}

util::StatusOr<QueryRequest> DecodeQueryRequest(std::string_view payload) {
  Reader reader(payload);
  QueryRequest request;
  if (!reader.ReadU64(&request.trace_id) || !reader.ReadU32(&request.user) ||
      !reader.ReadU32(&request.k) || !reader.ReadU32(&request.deadline_ms) ||
      !reader.ReadU32(&request.flags) || reader.remaining() != 0) {
    return Malformed("QueryRequest");
  }
  return request;
}

std::string EncodeQueryResponse(const QueryResponse& response) {
  std::string out;
  out.reserve(16 + response.items.size() * 8 + response.message.size());
  AppendU32(&out, response.status_code);
  AppendU32(&out, response.flags);
  AppendU32(&out, static_cast<uint32_t>(response.items.size()));
  AppendU32(&out, static_cast<uint32_t>(response.message.size()));
  for (const uint32_t item : response.items) AppendU32(&out, item);
  for (const float score : response.scores) AppendF32(&out, score);
  out.append(response.message);
  return out;
}

util::StatusOr<QueryResponse> DecodeQueryResponse(std::string_view payload) {
  Reader reader(payload);
  QueryResponse response;
  uint32_t num_items = 0, msg_len = 0;
  if (!reader.ReadU32(&response.status_code) ||
      !reader.ReadU32(&response.flags) || !reader.ReadU32(&num_items) ||
      !reader.ReadU32(&msg_len)) {
    return Malformed("QueryResponse");
  }
  // Cross-check the declared counts against the actual payload size before
  // any allocation: 8 bytes per item (id + score) plus the message.
  const uint64_t declared =
      static_cast<uint64_t>(num_items) * 8 + msg_len;
  if (declared != reader.remaining()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "QueryResponse declares %u items + %u message bytes but carries "
        "%zu payload bytes",
        num_items, msg_len, reader.remaining()));
  }
  response.items.resize(num_items);
  for (uint32_t& item : response.items) {
    if (!reader.ReadU32(&item)) return Malformed("QueryResponse");
  }
  response.scores.resize(num_items);
  for (float& score : response.scores) {
    if (!reader.ReadF32(&score)) return Malformed("QueryResponse");
  }
  if (!reader.ReadBytes(msg_len, &response.message)) {
    return Malformed("QueryResponse");
  }
  return response;
}

std::string EncodeServerInfo(const ServerInfo& info) {
  std::string out;
  AppendU32(&out, info.num_users);
  AppendU32(&out, info.num_items);
  AppendU32(&out, info.dim);
  AppendU32(&out, static_cast<uint32_t>(info.model_name.size()));
  out.append(info.model_name);
  return out;
}

util::StatusOr<ServerInfo> DecodeServerInfo(std::string_view payload) {
  Reader reader(payload);
  ServerInfo info;
  uint32_t name_len = 0;
  if (!reader.ReadU32(&info.num_users) || !reader.ReadU32(&info.num_items) ||
      !reader.ReadU32(&info.dim) || !reader.ReadU32(&name_len) ||
      name_len != reader.remaining() ||
      !reader.ReadBytes(name_len, &info.model_name)) {
    return Malformed("ServerInfo");
  }
  return info;
}

util::StatusOr<Frame> ReadFrame(int fd, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  char header[kFrameHeaderSize];
  bool got = false;
  HOSR_ASSIGN_OR_RETURN(got,
                        RecvExactOrClosed(fd, header, kFrameHeaderSize));
  if (!got) {
    if (clean_eof != nullptr) *clean_eof = true;
    return util::Status::Unavailable("connection closed by peer");
  }
  // Validate the header before allocating or reading the payload: decode
  // against the header alone (payload_size == 0 until proven valid).
  Frame frame;
  std::string buffer(header, kFrameHeaderSize);
  auto consumed = TryDecodeFrame(buffer, &frame);
  if (!consumed.ok()) return consumed.status();
  if (consumed.value() == 0) {
    // Header is valid but a payload follows; read exactly that much.
    Reader reader(std::string_view(buffer).substr(8, 4));
    uint32_t payload_size = 0;
    reader.ReadU32(&payload_size);
    buffer.resize(kFrameHeaderSize + payload_size);
    HOSR_RETURN_IF_ERROR(
        RecvExact(fd, buffer.data() + kFrameHeaderSize, payload_size));
    HOSR_ASSIGN_OR_RETURN(consumed, TryDecodeFrame(buffer, &frame));
  }
  return frame;
}

util::Status ResponseStatus(const QueryResponse& response) {
  const auto code = static_cast<util::StatusCode>(response.status_code);
  if (code == util::StatusCode::kOk) return util::Status::Ok();
  switch (code) {
    case util::StatusCode::kInvalidArgument:
    case util::StatusCode::kNotFound:
    case util::StatusCode::kOutOfRange:
    case util::StatusCode::kFailedPrecondition:
    case util::StatusCode::kIoError:
    case util::StatusCode::kInternal:
    case util::StatusCode::kUnimplemented:
    case util::StatusCode::kUnavailable:
    case util::StatusCode::kDeadlineExceeded:
    case util::StatusCode::kResourceExhausted:
    case util::StatusCode::kDataLoss:
      return util::Status(code, response.message);
    default:
      return util::Status::Internal(util::StrFormat(
          "server sent unknown status code %u: %s", response.status_code,
          response.message.c_str()));
  }
}

}  // namespace hosr::net
