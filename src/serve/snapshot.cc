#include "serve/snapshot.h"

#include <cstring>
#include <limits>
#include <sstream>

#include "kernels/kernels.h"
#include "tensor/serialize.h"
#include "util/fileio.h"
#include "util/string_util.h"

namespace hosr::serve {

namespace {

constexpr uint32_t kMagic = 0x48535256;  // "HSRV"
constexpr uint32_t kVersion = 1;
constexpr uint32_t kEndianMarker = 0x01020304;
constexpr uint32_t kFlagUserBias = 1u << 0;
constexpr uint32_t kFlagItemBias = 1u << 1;
constexpr uint32_t kMaxNameLen = 1u << 16;

template <typename T>
void WritePod(std::ostream* out, const T& value) {
  out->write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
util::Status ReadPod(std::istream* in, T* value, const char* what) {
  in->read(reinterpret_cast<char*>(value), sizeof(T));
  if (!*in) {
    return util::Status::IoError(std::string("snapshot truncated reading ") +
                                 what);
  }
  return util::Status::Ok();
}

util::Status ReadBias(std::istream* in, size_t n, const char* what,
                      std::vector<float>* bias) {
  bias->resize(n);
  in->read(reinterpret_cast<char*>(bias->data()),
           static_cast<std::streamsize>(n * sizeof(float)));
  if (!*in) {
    return util::Status::IoError(std::string("snapshot truncated reading ") +
                                 what);
  }
  return util::Status::Ok();
}

}  // namespace

float ModelSnapshot::Score(uint32_t user, uint32_t item) const {
  const float* u = factors.user_factors.row(user);
  const float* v = factors.item_factors.row(item);
  // Same dot microkernel (and thus accumulation order) as tensor::Gemm and
  // the engine's blocked scan, so served scores stay bit-identical to
  // ScoreAllItems within any one dispatch mode.
  float acc = kernels::Active().dot(factors.item_factors.cols(), u, v);
  if (!factors.user_bias.empty()) acc += factors.user_bias[user];
  if (!factors.item_bias.empty()) acc += factors.item_bias[item];
  return acc + factors.global_bias;
}

util::Status WriteSnapshot(const ModelSnapshot& snapshot, std::ostream* out) {
  const auto& f = snapshot.factors;
  if (f.user_factors.empty() || f.item_factors.empty()) {
    return util::Status::InvalidArgument("snapshot has empty factor matrices");
  }
  if (f.user_factors.cols() != f.item_factors.cols()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "snapshot factor dim mismatch: user %zu vs item %zu",
        f.user_factors.cols(), f.item_factors.cols()));
  }
  if (!f.user_bias.empty() && f.user_bias.size() != f.user_factors.rows()) {
    return util::Status::InvalidArgument("user_bias length != num_users");
  }
  if (!f.item_bias.empty() && f.item_bias.size() != f.item_factors.rows()) {
    return util::Status::InvalidArgument("item_bias length != num_items");
  }
  if (snapshot.model_name.size() >= kMaxNameLen) {
    return util::Status::InvalidArgument("model name implausibly long");
  }

  WritePod(out, kMagic);
  WritePod(out, kVersion);
  WritePod(out, kEndianMarker);
  uint32_t flags = 0;
  if (!f.user_bias.empty()) flags |= kFlagUserBias;
  if (!f.item_bias.empty()) flags |= kFlagItemBias;
  WritePod(out, flags);
  WritePod(out, f.global_bias);
  const auto name_len = static_cast<uint32_t>(snapshot.model_name.size());
  WritePod(out, name_len);
  out->write(snapshot.model_name.data(), name_len);

  HOSR_RETURN_IF_ERROR(tensor::WriteMatrix(f.user_factors, out));
  HOSR_RETURN_IF_ERROR(tensor::WriteMatrix(f.item_factors, out));
  if (!f.user_bias.empty()) {
    out->write(reinterpret_cast<const char*>(f.user_bias.data()),
               static_cast<std::streamsize>(f.user_bias.size() *
                                            sizeof(float)));
  }
  if (!f.item_bias.empty()) {
    out->write(reinterpret_cast<const char*>(f.item_bias.data()),
               static_cast<std::streamsize>(f.item_bias.size() *
                                            sizeof(float)));
  }
  WritePod(out, kMagic);
  if (!*out) return util::Status::IoError("snapshot write failed");
  return util::Status::Ok();
}

util::StatusOr<ModelSnapshot> ReadSnapshot(std::istream* in) {
  uint32_t magic = 0, version = 0, endian = 0, flags = 0, name_len = 0;
  HOSR_RETURN_IF_ERROR(ReadPod(in, &magic, "magic"));
  if (magic != kMagic) {
    return util::Status::InvalidArgument(
        util::StrFormat("bad snapshot magic 0x%08x", magic));
  }
  HOSR_RETURN_IF_ERROR(ReadPod(in, &version, "version"));
  if (version != kVersion) {
    return util::Status::InvalidArgument(
        util::StrFormat("unsupported snapshot version %u", version));
  }
  HOSR_RETURN_IF_ERROR(ReadPod(in, &endian, "endian marker"));
  if (endian != kEndianMarker) {
    return util::Status::InvalidArgument(
        "snapshot written on a foreign-endian host");
  }
  HOSR_RETURN_IF_ERROR(ReadPod(in, &flags, "flags"));
  if ((flags & ~(kFlagUserBias | kFlagItemBias)) != 0) {
    return util::Status::InvalidArgument(
        util::StrFormat("unknown snapshot flags 0x%x", flags));
  }

  ModelSnapshot snapshot;
  HOSR_RETURN_IF_ERROR(
      ReadPod(in, &snapshot.factors.global_bias, "global bias"));
  HOSR_RETURN_IF_ERROR(ReadPod(in, &name_len, "model name length"));
  if (name_len >= kMaxNameLen) {
    return util::Status::InvalidArgument("model name implausibly long");
  }
  snapshot.model_name.resize(name_len);
  in->read(snapshot.model_name.data(), name_len);
  if (!*in) return util::Status::IoError("snapshot truncated reading name");

  HOSR_ASSIGN_OR_RETURN(snapshot.factors.user_factors,
                        tensor::ReadMatrix(in));
  HOSR_ASSIGN_OR_RETURN(snapshot.factors.item_factors,
                        tensor::ReadMatrix(in));
  const auto& f = snapshot.factors;
  if (f.user_factors.empty() || f.item_factors.empty()) {
    return util::Status::InvalidArgument("snapshot has empty factor matrices");
  }
  if (f.user_factors.cols() != f.item_factors.cols()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "snapshot factor dim mismatch: user %zu vs item %zu",
        f.user_factors.cols(), f.item_factors.cols()));
  }
  if (f.user_factors.rows() > std::numeric_limits<uint32_t>::max() ||
      f.item_factors.rows() > std::numeric_limits<uint32_t>::max()) {
    return util::Status::InvalidArgument("snapshot dimensions overflow u32");
  }
  if ((flags & kFlagUserBias) != 0) {
    HOSR_RETURN_IF_ERROR(ReadBias(in, f.user_factors.rows(), "user bias",
                                  &snapshot.factors.user_bias));
  }
  if ((flags & kFlagItemBias) != 0) {
    HOSR_RETURN_IF_ERROR(ReadBias(in, f.item_factors.rows(), "item bias",
                                  &snapshot.factors.item_bias));
  }
  uint32_t sentinel = 0;
  HOSR_RETURN_IF_ERROR(ReadPod(in, &sentinel, "trailing sentinel"));
  if (sentinel != kMagic) {
    return util::Status::InvalidArgument(
        "snapshot trailing sentinel mismatch (file corrupt or truncated)");
  }
  return snapshot;
}

util::Status SaveSnapshot(const ModelSnapshot& snapshot,
                          const std::string& path) {
  std::ostringstream body;
  HOSR_RETURN_IF_ERROR(WriteSnapshot(snapshot, &body));
  // Atomic temp-file + rename with a CRC-32 footer: a crash mid-export
  // never leaves a torn snapshot at `path`, and any flipped bit surfaces
  // as DataLoss on load instead of silently skewed scores.
  return util::WriteFileAtomicWithCrc(path, body.str());
}

util::StatusOr<ModelSnapshot> LoadSnapshot(const std::string& path) {
  HOSR_ASSIGN_OR_RETURN(std::string body, util::ReadFileVerifyCrc(path));
  std::istringstream in(body);
  return ReadSnapshot(&in);
}

util::StatusOr<ModelSnapshot> BuildSnapshot(
    const models::RankingModel& model) {
  ModelSnapshot snapshot;
  snapshot.model_name = model.name();
  HOSR_ASSIGN_OR_RETURN(snapshot.factors, model.ExportFactors());
  return snapshot;
}

}  // namespace hosr::serve
