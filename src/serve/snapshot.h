#ifndef HOSR_SERVE_SNAPSHOT_H_
#define HOSR_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

#include "models/model.h"
#include "util/statusor.h"

namespace hosr::serve {

// A trained model frozen for serving: the bilinear factors that reproduce
// ScoreAllItems bit for bit, plus enough metadata to sanity-check a request
// stream against the artifact it is served from.
//
// On-disk format (version 1, native byte order with an endian marker):
//
//   u32  magic 0x48535256 ("HSRV")
//   u32  format version (1)
//   u32  endian marker 0x01020304 (readers on a foreign-endian host reject)
//   u32  flags (bit 0: user_bias present, bit 1: item_bias present)
//   f32  global_bias
//   u32  model name length, then that many bytes
//   user_factors   tensor::WriteMatrix block (n x d)
//   item_factors   tensor::WriteMatrix block (m x d)
//   [user_bias]    n raw f32, when flag bit 0
//   [item_bias]    m raw f32, when flag bit 1
//   u32  magic again — truncation sentinel
//
// Readers validate magic/version/endianness, cross-check matrix shapes and
// bias lengths, and require the trailing sentinel, so corrupt or truncated
// files surface as util::Status errors rather than crashes or garbage.
struct ModelSnapshot {
  std::string model_name;
  models::FrozenFactors factors;

  uint32_t num_users() const {
    return static_cast<uint32_t>(factors.user_factors.rows());
  }
  uint32_t num_items() const {
    return static_cast<uint32_t>(factors.item_factors.rows());
  }
  uint32_t dim() const {
    return static_cast<uint32_t>(factors.item_factors.cols());
  }

  // score(u, i) under this snapshot; reference implementation for tests
  // and the engine's blocked kernel.
  float Score(uint32_t user, uint32_t item) const;
};

util::Status WriteSnapshot(const ModelSnapshot& snapshot, std::ostream* out);
util::StatusOr<ModelSnapshot> ReadSnapshot(std::istream* in);

util::Status SaveSnapshot(const ModelSnapshot& snapshot,
                          const std::string& path);
util::StatusOr<ModelSnapshot> LoadSnapshot(const std::string& path);

// Freezes a trained model via RankingModel::ExportFactors. Returns
// Unimplemented for models without a bilinear scorer (NCF, NSCR).
util::StatusOr<ModelSnapshot> BuildSnapshot(const models::RankingModel& model);

}  // namespace hosr::serve

#endif  // HOSR_SERVE_SNAPSHOT_H_
