#include "serve/degraded.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace hosr::serve {

DegradedRanker::DegradedRanker(const InferenceEngine* engine)
    : engine_(engine) {
  HOSR_CHECK(engine != nullptr);
  const uint32_t m = engine->num_items();
  std::vector<double> popularity(m, 0.0);

  bool any_interactions = false;
  for (uint32_t u = 0; u < engine->num_users(); ++u) {
    for (const uint32_t item : engine->SeenItems(u)) {
      popularity[item] += 1.0;
      any_interactions = true;
    }
  }
  if (!any_interactions) {
    const auto& f = engine->snapshot().factors;
    if (!f.item_bias.empty()) {
      for (uint32_t j = 0; j < m; ++j) popularity[j] = f.item_bias[j];
    } else {
      const size_t d = f.item_factors.cols();
      for (uint32_t j = 0; j < m; ++j) {
        const float* v = f.item_factors.row(j);
        double norm = 0.0;
        for (size_t dd = 0; dd < d; ++dd) norm += v[dd] * v[dd];
        popularity[j] = std::sqrt(norm);
      }
    }
  }

  ranked_items_.resize(m);
  std::iota(ranked_items_.begin(), ranked_items_.end(), 0);
  std::stable_sort(ranked_items_.begin(), ranked_items_.end(),
                   [&](uint32_t a, uint32_t b) {
                     return popularity[a] > popularity[b];
                   });
}

RankedItems DegradedRanker::TopK(uint32_t user, uint32_t k) const {
  const std::vector<uint32_t>& seen = engine_->SeenItems(user);
  RankedItems result;
  result.reserve(k);
  for (const uint32_t item : ranked_items_) {
    if (result.size() == k) break;
    if (std::binary_search(seen.begin(), seen.end(), item)) continue;
    result.push_back(item);
  }
  return result;
}

}  // namespace hosr::serve
