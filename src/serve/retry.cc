#include "serve/retry.h"

#include <algorithm>

namespace hosr::serve {

RetryPolicy::RetryPolicy(Options options, uint64_t seed)
    : options_(options), rng_(seed) {
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  if (options_.initial_backoff_ms < 0.0) options_.initial_backoff_ms = 0.0;
  options_.max_backoff_ms =
      std::max(options_.max_backoff_ms, options_.initial_backoff_ms);
}

double RetryPolicy::NextDelayMs() {
  if (attempts_ >= options_.max_attempts) return -1.0;
  // Decorrelated jitter (AWS architecture blog): sleep = U(base, prev * 3),
  // clamped to [base, cap]. Spreads retry storms without synchronizing
  // clients the way plain exponential backoff does.
  const double base = options_.initial_backoff_ms;
  const double upper = std::clamp(previous_delay_ms_ * 3.0, base,
                                  options_.max_backoff_ms);
  const double delay = base + rng_.UniformDouble() * (upper - base);
  if (options_.budget_ms > 0.0 && spent_ms_ + delay > options_.budget_ms) {
    budget_blown_ = true;
    return -1.0;
  }
  ++attempts_;
  spent_ms_ += delay;
  previous_delay_ms_ = delay;
  return delay;
}

}  // namespace hosr::serve
