#ifndef HOSR_SERVE_CACHE_H_
#define HOSR_SERVE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace hosr::serve {

// Sharded LRU cache of ranked result lists keyed by (user, K). Each shard
// owns an independent mutex + intrusive LRU list, so concurrent request
// threads rarely contend. Hit/miss/eviction totals feed both local Stats
// and the serve/cache_* obs counters.
//
// Entries are tagged with a snapshot generation. Advance() (called by the
// SnapshotManager on every swap) bumps the cache's current generation:
// entries from older generations become misses and are evicted on touch,
// and a Put computed under an older generation is dropped instead of
// stored. The drop closes the race flush-on-swap leaves open — a request
// that ranked under the old engine but reached Put after the swap would
// otherwise re-poison the cache with pre-swap scores.
class ResultCache {
 public:
  struct Options {
    size_t capacity = 1 << 16;  // entries across all shards
    size_t num_shards = 16;
  };

  ResultCache();  // default Options
  explicit ResultCache(Options options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // The cached list for (user, k), refreshing its recency; nullopt on miss.
  // `generation` is the snapshot generation the caller is serving from
  // (the acquired ServingState's version; 0 for ungenerationed use): an
  // entry written under any other generation is evicted and misses.
  std::optional<std::vector<uint32_t>> Get(uint32_t user, uint32_t k,
                                           uint64_t generation = 0);

  // Inserts or refreshes (user, k), evicting the shard's least recently
  // used entry when over budget. `generation` is the generation the result
  // was *computed* under — if the cache has advanced past it since, the
  // value is stale and silently dropped.
  void Put(uint32_t user, uint32_t k, std::vector<uint32_t> items,
           uint64_t generation = 0);

  // Declares `generation` current (snapshot swap). Older entries die
  // lazily on their next touch; older in-flight Puts are dropped.
  void Advance(uint64_t generation);

  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  // Drops every entry (e.g. after a snapshot swap). Stats are kept.
  void Clear();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t stale_hits = 0;   // generation-mismatched lookups (evicted)
    uint64_t stale_puts = 0;   // Puts dropped for lagging the generation
    size_t entries = 0;
  };
  Stats GetStats() const;

  // hits / (hits + misses), 0 before any lookup.
  double HitRate() const;

  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    uint64_t generation = 0;
    std::vector<uint32_t> items;
  };
  struct Shard {
    mutable std::mutex mutex;
    // Front = most recently used.
    std::list<std::pair<uint64_t, Entry>> lru;
    std::unordered_map<uint64_t, decltype(lru)::iterator> index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t stale_hits = 0;
    uint64_t stale_puts = 0;
  };

  static uint64_t Key(uint32_t user, uint32_t k) {
    return (static_cast<uint64_t>(user) << 32) | k;
  }
  Shard& ShardFor(uint64_t key) {
    // Fibonacci hash spreads sequential user ids across the 2^shard_bits_
    // shards; the top bits of the product pick the shard.
    if (shard_bits_ == 0) return shards_[0];
    return shards_[(key * 0x9E3779B97F4A7C15ull) >> (64 - shard_bits_)];
  }

  size_t capacity_;
  size_t per_shard_capacity_;
  unsigned shard_bits_;
  std::atomic<uint64_t> generation_{0};
  std::vector<Shard> shards_;
};

}  // namespace hosr::serve

#endif  // HOSR_SERVE_CACHE_H_
