#ifndef HOSR_SERVE_CACHE_H_
#define HOSR_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace hosr::serve {

// Sharded LRU cache of ranked result lists keyed by (user, K). Each shard
// owns an independent mutex + intrusive LRU list, so concurrent request
// threads rarely contend. Hit/miss/eviction totals feed both local Stats
// and the serve/cache_* obs counters.
class ResultCache {
 public:
  struct Options {
    size_t capacity = 1 << 16;  // entries across all shards
    size_t num_shards = 16;
  };

  ResultCache();  // default Options
  explicit ResultCache(Options options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // The cached list for (user, k), refreshing its recency; nullopt on miss.
  std::optional<std::vector<uint32_t>> Get(uint32_t user, uint32_t k);

  // Inserts or refreshes (user, k), evicting the shard's least recently
  // used entry when over budget.
  void Put(uint32_t user, uint32_t k, std::vector<uint32_t> items);

  // Drops every entry (e.g. after a snapshot swap). Stats are kept.
  void Clear();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };
  Stats GetStats() const;

  // hits / (hits + misses), 0 before any lookup.
  double HitRate() const;

  size_t capacity() const { return capacity_; }

 private:
  struct Shard {
    mutable std::mutex mutex;
    // Front = most recently used.
    std::list<std::pair<uint64_t, std::vector<uint32_t>>> lru;
    std::unordered_map<uint64_t, decltype(lru)::iterator> index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  static uint64_t Key(uint32_t user, uint32_t k) {
    return (static_cast<uint64_t>(user) << 32) | k;
  }
  Shard& ShardFor(uint64_t key) {
    // Fibonacci hash spreads sequential user ids across the 2^shard_bits_
    // shards; the top bits of the product pick the shard.
    if (shard_bits_ == 0) return shards_[0];
    return shards_[(key * 0x9E3779B97F4A7C15ull) >> (64 - shard_bits_)];
  }

  size_t capacity_;
  size_t per_shard_capacity_;
  unsigned shard_bits_;
  std::vector<Shard> shards_;
};

}  // namespace hosr::serve

#endif  // HOSR_SERVE_CACHE_H_
