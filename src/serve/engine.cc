#include "serve/engine.h"

#include <algorithm>

#include "eval/topk.h"
#include "fault/fault.h"
#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hosr::serve {

namespace {
const std::vector<uint32_t> kNoExclusions;
}  // namespace

InferenceEngine::InferenceEngine(ModelSnapshot snapshot,
                                 const data::InteractionMatrix* seen,
                                 EngineOptions options)
    : snapshot_(std::move(snapshot)), options_(options) {
  HOSR_CHECK(!snapshot_.factors.user_factors.empty() &&
             !snapshot_.factors.item_factors.empty())
      << "engine needs a non-empty snapshot";
  HOSR_CHECK(snapshot_.factors.user_factors.cols() ==
             snapshot_.factors.item_factors.cols());
  HOSR_CHECK(options_.item_block > 0);
  if (seen != nullptr) {
    HOSR_CHECK(seen->num_users() == num_users() &&
               seen->num_items() == num_items())
        << "seen-item matrix " << seen->num_users() << "x"
        << seen->num_items() << " vs snapshot " << num_users() << "x"
        << num_items();
    seen_.resize(seen->num_users());
    for (uint32_t u = 0; u < seen->num_users(); ++u) {
      seen_[u] = seen->ItemsOf(u);  // already sorted ascending
    }
  }
}

std::vector<uint32_t> InferenceEngine::TopKForUser(uint32_t user,
                                                   uint32_t k) const {
  HOSR_CHECK(user < num_users()) << user << " >= " << num_users();
  HOSR_CHECK(k > 0);
  auto result = TopKImpl(user, k, kNoDeadline, kNoFaultToken);
  HOSR_CHECK(result.ok()) << result.status();
  return std::move(result).value();
}

util::StatusOr<RankedItems> InferenceEngine::TryTopKForUser(
    uint32_t user, uint32_t k, Deadline deadline, uint64_t fault_token) const {
  if (k == 0) return util::Status::InvalidArgument("k must be >= 1");
  if (user >= num_users()) {
    return util::Status::OutOfRange(util::StrFormat(
        "user %u >= %u", user, num_users()));
  }
  return TopKImpl(user, k, deadline, fault_token);
}

util::StatusOr<RankedItems> InferenceEngine::TopKImpl(
    uint32_t user, uint32_t k, Deadline deadline, uint64_t fault_token) const {
  HOSR_TRACE_SPAN("serve/query");
  const util::WallTimer timer;

  if (fault_token != kNoFaultToken) {
    // A faulted scoring shard: the armed trigger decides — deterministically
    // from `fault_token` — whether this call errors or stalls.
    HOSR_RETURN_IF_ERROR(fault::Inject("engine.score", fault_token));
  }
  const bool has_deadline = deadline != kNoDeadline;
  if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
    HOSR_COUNTER("serve/engine_deadline_exceeded").Increment();
    return util::Status::DeadlineExceeded("deadline expired before scoring");
  }

  const auto& f = snapshot_.factors;
  const float* u = f.user_factors.row(user);
  const size_t d = f.item_factors.cols();
  const uint32_t m = num_items();
  const std::vector<uint32_t>& excluded =
      seen_.empty() ? kNoExclusions : seen_[user];

  static thread_local std::vector<float> scratch;
  scratch.resize(options_.item_block);
  const kernels::KernelTable& kern = kernels::Active();
  HOSR_COUNTER("kernels/score_flops").Increment(2ull * m * d);
  eval::TopKAccumulator acc(k);
  auto excluded_it = excluded.begin();
  for (uint32_t j0 = 0; j0 < m; j0 += options_.item_block) {
    // One deadline read per block bounds overrun to a single block of
    // scoring while keeping the no-deadline path free of clock reads.
    if (has_deadline && j0 != 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      HOSR_COUNTER("serve/engine_deadline_exceeded").Increment();
      return util::Status::DeadlineExceeded(util::StrFormat(
          "deadline expired mid-scan at item %u of %u", j0, m));
    }
    const uint32_t j1 = std::min(m, j0 + options_.item_block);
    // Fused scoring GEMV: one pass fills the scratch block and returns its
    // max, so a block whose best score cannot crack the current top-K is
    // rejected without any per-item heap compares. The reject is exact:
    // WouldAccept keeps ties (lower index can still win), and scores are
    // identical either way, so rankings never change.
    const float block_max = kern.score_block(
        j1 - j0, d, u, f.item_factors.row(j0),
        f.item_bias.empty() ? nullptr : f.item_bias.data() + j0,
        scratch.data());
    if (acc.Full() && !acc.WouldAccept(block_max)) continue;
    for (uint32_t j = j0; j < j1; ++j) {
      while (excluded_it != excluded.end() && *excluded_it < j) ++excluded_it;
      if (excluded_it != excluded.end() && *excluded_it == j) continue;
      acc.Consider(scratch[j - j0], j);
    }
  }
  auto result = acc.Take();

  HOSR_COUNTER("serve/queries").Increment();
  HOSR_HISTOGRAM("serve/query_latency_us")
      .Observe(timer.ElapsedMillis() * 1000.0);
  return result;
}

const std::vector<uint32_t>& InferenceEngine::SeenItems(uint32_t user) const {
  HOSR_CHECK(user < num_users());
  if (seen_.empty()) return kNoExclusions;
  return seen_[user];
}

std::vector<std::vector<uint32_t>> InferenceEngine::TopKBatch(
    const std::vector<uint32_t>& users, uint32_t k) const {
  HOSR_TRACE_SPAN("serve/topk_batch");
  std::vector<std::vector<uint32_t>> results(users.size());
  const size_t users_per_chunk =
      options_.min_users_per_chunk > 0
          ? options_.min_users_per_chunk
          : util::GrainFor(static_cast<size_t>(num_items()) * dim());
  util::ParallelFor(
      0, users.size(),
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          results[i] = TopKForUser(users[i], k);
        }
      },
      users_per_chunk);
  HOSR_HISTOGRAM("serve/batch_size").Observe(static_cast<double>(users.size()));
  return results;
}

std::vector<float> InferenceEngine::ScoreAll(uint32_t user) const {
  HOSR_CHECK(user < num_users());
  std::vector<float> scores(num_items());
  for (uint32_t j = 0; j < num_items(); ++j) {
    scores[j] = snapshot_.Score(user, j);
  }
  return scores;
}

}  // namespace hosr::serve
