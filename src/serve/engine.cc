#include "serve/engine.h"

#include <algorithm>

#include "eval/topk.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hosr::serve {

namespace {
const std::vector<uint32_t> kNoExclusions;
}  // namespace

InferenceEngine::InferenceEngine(ModelSnapshot snapshot,
                                 const data::InteractionMatrix* seen,
                                 EngineOptions options)
    : snapshot_(std::move(snapshot)), options_(options) {
  HOSR_CHECK(!snapshot_.factors.user_factors.empty() &&
             !snapshot_.factors.item_factors.empty())
      << "engine needs a non-empty snapshot";
  HOSR_CHECK(snapshot_.factors.user_factors.cols() ==
             snapshot_.factors.item_factors.cols());
  HOSR_CHECK(options_.item_block > 0);
  if (seen != nullptr) {
    HOSR_CHECK(seen->num_users() == num_users() &&
               seen->num_items() == num_items())
        << "seen-item matrix " << seen->num_users() << "x"
        << seen->num_items() << " vs snapshot " << num_users() << "x"
        << num_items();
    seen_.resize(seen->num_users());
    for (uint32_t u = 0; u < seen->num_users(); ++u) {
      seen_[u] = seen->ItemsOf(u);  // already sorted ascending
    }
  }
}

std::vector<uint32_t> InferenceEngine::TopKForUser(uint32_t user,
                                                   uint32_t k) const {
  HOSR_CHECK(user < num_users()) << user << " >= " << num_users();
  HOSR_CHECK(k > 0);
  const util::WallTimer timer;

  const auto& f = snapshot_.factors;
  const float* u = f.user_factors.row(user);
  const size_t d = f.item_factors.cols();
  const uint32_t m = num_items();
  const std::vector<uint32_t>& excluded =
      seen_.empty() ? kNoExclusions : seen_[user];

  // Blocked GEMV: score item_block rows at a time into a thread-local
  // scratch, then merge the block into the top-K heap. The dot product
  // accumulates in item-factor-column order, exactly like tensor::Gemm's
  // transpose-B path, so scores are bit-identical to ScoreAllItems.
  static thread_local std::vector<float> scratch;
  scratch.resize(options_.item_block);
  eval::TopKAccumulator acc(k);
  auto excluded_it = excluded.begin();
  for (uint32_t j0 = 0; j0 < m; j0 += options_.item_block) {
    const uint32_t j1 = std::min(m, j0 + options_.item_block);
    for (uint32_t j = j0; j < j1; ++j) {
      const float* v = f.item_factors.row(j);
      float score = 0.0f;
      for (size_t dd = 0; dd < d; ++dd) score += u[dd] * v[dd];
      if (!f.item_bias.empty()) score += f.item_bias[j];
      scratch[j - j0] = score;
    }
    // The user-side and global biases shift every item equally and cannot
    // change the ranking, so the kernel skips them.
    for (uint32_t j = j0; j < j1; ++j) {
      while (excluded_it != excluded.end() && *excluded_it < j) ++excluded_it;
      if (excluded_it != excluded.end() && *excluded_it == j) continue;
      acc.Consider(scratch[j - j0], j);
    }
  }
  auto result = acc.Take();

  HOSR_COUNTER("serve/queries_total").Increment();
  HOSR_HISTOGRAM("serve/query_latency_us")
      .Observe(timer.ElapsedMillis() * 1000.0);
  return result;
}

std::vector<std::vector<uint32_t>> InferenceEngine::TopKBatch(
    const std::vector<uint32_t>& users, uint32_t k) const {
  HOSR_TRACE_SPAN("serve/topk_batch");
  std::vector<std::vector<uint32_t>> results(users.size());
  util::ParallelFor(
      0, users.size(),
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          results[i] = TopKForUser(users[i], k);
        }
      },
      options_.min_users_per_chunk);
  HOSR_HISTOGRAM("serve/batch_size").Observe(static_cast<double>(users.size()));
  return results;
}

std::vector<float> InferenceEngine::ScoreAll(uint32_t user) const {
  HOSR_CHECK(user < num_users());
  std::vector<float> scores(num_items());
  for (uint32_t j = 0; j < num_items(); ++j) {
    scores[j] = snapshot_.Score(user, j);
  }
  return scores;
}

}  // namespace hosr::serve
