#include "serve/batcher.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace hosr::serve {

RequestBatcher::RequestBatcher(const InferenceEngine* engine)
    : RequestBatcher(engine, Options{}) {}

RequestBatcher::RequestBatcher(const InferenceEngine* engine, Options options)
    : engine_(engine), options_(options) {
  HOSR_CHECK(engine != nullptr);
  HOSR_CHECK(options_.max_batch_size > 0);
  HOSR_CHECK(options_.queue_capacity > 0);
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

RequestBatcher::~RequestBatcher() { Stop(); }

std::future<util::StatusOr<RankedItems>> RequestBatcher::Submit(uint32_t user,
                                                                uint32_t k) {
  std::promise<util::StatusOr<RankedItems>> promise;
  auto future = promise.get_future();
  if (k == 0) {
    promise.set_value(util::Status::InvalidArgument("k must be >= 1"));
    return future;
  }
  if (user >= engine_->num_users()) {
    promise.set_value(util::Status::OutOfRange(
        "user " + std::to_string(user) + " >= " +
        std::to_string(engine_->num_users())));
    return future;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    space_available_.wait(lock, [this] {
      return stopping_ || queue_.size() < options_.queue_capacity;
    });
    if (stopping_) {
      promise.set_value(
          util::Status::FailedPrecondition("batcher is stopped"));
      return future;
    }
    queue_.push_back(Request{user, k, std::move(promise)});
  }
  work_available_.notify_one();
  HOSR_COUNTER("serve/batcher_requests_total").Increment();
  return future;
}

void RequestBatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  space_available_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // The dispatcher drains the queue before exiting, but fail anything that
  // raced in.
  std::deque<Request> leftover;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftover.swap(queue_);
  }
  for (Request& r : leftover) {
    r.promise.set_value(
        util::Status::FailedPrecondition("batcher stopped before dispatch"));
  }
}

void RequestBatcher::DispatchLoop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping with nothing left to serve
      // Linger briefly for co-arriving requests so batches fill up, but
      // never hold a full batch back.
      if (options_.max_linger_us > 0 &&
          queue_.size() < options_.max_batch_size && !stopping_) {
        work_available_.wait_for(
            lock, std::chrono::microseconds(options_.max_linger_us), [this] {
              return stopping_ || queue_.size() >= options_.max_batch_size;
            });
      }
      const size_t take = std::min(queue_.size(), options_.max_batch_size);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    space_available_.notify_all();
    ExecuteBatch(std::move(batch));
  }
}

void RequestBatcher::ExecuteBatch(std::vector<Request> batch) {
  HOSR_TRACE_SPAN("serve/dispatch_batch");
  HOSR_HISTOGRAM("serve/dispatch_batch_size")
      .Observe(static_cast<double>(batch.size()));

  // Cache pass: fulfill hits immediately, group misses by K so each group
  // becomes one engine batch.
  std::map<uint32_t, std::vector<size_t>> misses_by_k;  // k -> batch indices
  for (size_t i = 0; i < batch.size(); ++i) {
    if (options_.cache != nullptr) {
      if (auto hit = options_.cache->Get(batch[i].user, batch[i].k)) {
        batch[i].promise.set_value(std::move(*hit));
        continue;
      }
    }
    misses_by_k[batch[i].k].push_back(i);
  }

  for (auto& [k, indices] : misses_by_k) {
    std::vector<uint32_t> users;
    users.reserve(indices.size());
    for (const size_t i : indices) users.push_back(batch[i].user);
    auto results = engine_->TopKBatch(users, k);
    for (size_t j = 0; j < indices.size(); ++j) {
      Request& r = batch[indices[j]];
      if (options_.cache != nullptr) {
        options_.cache->Put(r.user, k, results[j]);
      }
      r.promise.set_value(std::move(results[j]));
    }
  }
}

}  // namespace hosr::serve
