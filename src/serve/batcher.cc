#include "serve/batcher.h"

#include <algorithm>
#include <chrono>

#include "obs/admin_server.h"
#include "obs/context.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace hosr::serve {

RequestBatcher::RequestBatcher(const InferenceEngine* engine)
    : RequestBatcher(engine, Options{}) {}

RequestBatcher::RequestBatcher(const InferenceEngine* engine, Options options)
    : engine_(engine),
      options_(options),
      executor_(engine, options.hardened) {
  HOSR_CHECK(engine != nullptr);
  HOSR_CHECK(options_.max_batch_size > 0);
  HOSR_CHECK(options_.queue_capacity > 0);
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

RequestBatcher::~RequestBatcher() { Stop(); }

std::future<util::StatusOr<ServeResponse>> RequestBatcher::Submit(
    uint32_t user, uint32_t k) {
  return Submit(user, k, kNoDeadline);
}

std::future<util::StatusOr<ServeResponse>> RequestBatcher::Submit(
    uint32_t user, uint32_t k, Deadline deadline) {
  std::promise<util::StatusOr<ServeResponse>> promise;
  auto future = promise.get_future();
  if (k == 0) {
    promise.set_value(util::Status::InvalidArgument("k must be >= 1"));
    return future;
  }
  if (user >= engine_->num_users()) {
    promise.set_value(util::Status::OutOfRange(
        "user " + std::to_string(user) + " >= " +
        std::to_string(engine_->num_users())));
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      promise.set_value(
          util::Status::FailedPrecondition("batcher is stopped"));
      return future;
    }
    if (queue_.size() >= options_.queue_capacity) {
      // Load shedding: failing fast under overload bounds both memory and
      // queueing delay; blocking here would just move the overload into
      // every client thread.
      HOSR_COUNTER("serve/shed").Increment();
      obs::HealthTracker::Global().ReportOutcome(/*failed=*/true);
      promise.set_value(util::Status::ResourceExhausted(
          "request queue full (" + std::to_string(options_.queue_capacity) +
          " pending)"));
      return future;
    }
    queue_.push_back(Request{user, k, deadline,
                             next_token_.fetch_add(1,
                                                   std::memory_order_relaxed),
                             obs::CurrentContext(), std::move(promise)});
  }
  work_available_.notify_one();
  HOSR_COUNTER("serve/batcher_requests").Increment();
  return future;
}

void RequestBatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Complete whatever the dispatcher left behind so no caller hangs on an
  // unfulfilled promise.
  std::deque<Request> leftover;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftover.swap(queue_);
  }
  for (Request& r : leftover) {
    r.promise.set_value(
        util::Status::Unavailable("batcher stopped before dispatch"));
  }
}

void RequestBatcher::DispatchLoop() {
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // Stop() fails anything still queued
      // Linger briefly for co-arriving requests so batches fill up, but
      // never hold a full batch back.
      if (options_.max_linger_us > 0 &&
          queue_.size() < options_.max_batch_size) {
        work_available_.wait_for(
            lock, std::chrono::microseconds(options_.max_linger_us), [this] {
              return stopping_ || queue_.size() >= options_.max_batch_size;
            });
        if (stopping_) return;
      }
      const size_t take = std::min(queue_.size(), options_.max_batch_size);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    ExecuteBatch(std::move(batch));
  }
}

void RequestBatcher::ExecuteBatch(std::vector<Request> batch) {
  HOSR_TRACE_SPAN("serve/dispatch_batch");
  HOSR_HISTOGRAM("serve/dispatch_batch_size")
      .Observe(static_cast<double>(batch.size()));

  // Cache pass: fulfill hits immediately; collect misses for the engine.
  std::vector<size_t> misses;
  misses.reserve(batch.size());
  const auto now = std::chrono::steady_clock::now();
  for (size_t i = 0; i < batch.size(); ++i) {
    Request& r = batch[i];
    // A request that expired while queued fails fast — burning engine
    // time on an answer nobody is waiting for starves live requests.
    if (r.deadline != kNoDeadline && now >= r.deadline) {
      HOSR_COUNTER("serve/deadline_exceeded").Increment();
      obs::HealthTracker::Global().ReportOutcome(/*failed=*/true);
      obs::FlightRecorder::Global().OnDeadlineExceeded();
      r.promise.set_value(
          util::Status::DeadlineExceeded("request expired in queue"));
      continue;
    }
    if (options_.cache != nullptr) {
      if (auto hit = options_.cache->Get(r.user, r.k)) {
        r.promise.set_value(
            ServeResponse{std::move(*hit), /*degraded=*/false});
        continue;
      }
    }
    misses.push_back(i);
  }

  // Hardened execution of the misses, sharded across the pool. Each
  // request is independent: one faulted or deadline-blown query degrades
  // or fails alone instead of sinking its whole batch.
  util::ParallelFor(
      0, misses.size(),
      [&](size_t begin, size_t end) {
        for (size_t idx = begin; idx < end; ++idx) {
          Request& r = batch[misses[idx]];
          // Cross-thread handoff: the submitter's context rides in the
          // Request and is re-installed here so the executor's spans and
          // latency exemplars carry the original trace id.
          obs::ScopedRequestContext request_scope(r.context);
          // The request's own deadline (kNoDeadline for plain Submits)
          // rides into the engine's per-block checks, so a queued request
          // that is nearly expired stops scoring the moment it blows its
          // budget instead of finishing a doomed scan.
          auto response = executor_.Execute(r.user, r.k, r.token, r.deadline);
          if (response.ok() && !response->degraded &&
              options_.cache != nullptr) {
            options_.cache->Put(r.user, r.k, response->items);
          }
          r.promise.set_value(std::move(response));
        }
      },
      /*min_chunk=*/1);
}

}  // namespace hosr::serve
