#include "serve/hardened.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/admin_server.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace hosr::serve {

namespace {

// Attempt tokens must be distinct per (request, attempt) so each attempt's
// fault draw is independent; 16 attempts per request is far above any sane
// retry cap.
constexpr uint64_t kMaxAttemptsPerRequest = 16;

uint64_t MixSeed(uint64_t seed, uint64_t token) {
  uint64_t x = seed ^ (token * 0x9e3779b97f4a7c15ULL);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

HardenedExecutor::HardenedExecutor(const InferenceEngine* engine,
                                   HardenedOptions options)
    : engine_(engine), options_(options) {
  HOSR_CHECK(engine != nullptr);
  HOSR_CHECK(options_.retry.max_attempts >= 1);
  HOSR_CHECK(static_cast<uint64_t>(options_.retry.max_attempts) <
             kMaxAttemptsPerRequest);
}

util::StatusOr<ServeResponse> HardenedExecutor::Execute(uint32_t user,
                                                        uint32_t k,
                                                        uint64_t token) const {
  return Execute(user, k, token, kNoDeadline);
}

util::StatusOr<ServeResponse> HardenedExecutor::Execute(
    uint32_t user, uint32_t k, uint64_t token, Deadline deadline) const {
  HOSR_TRACE_SPAN("serve/request");
  const int64_t begin_ns = obs::NowNanos();
  util::StatusOr<ServeResponse> result =
      ExecuteInternal(user, k, token, deadline);
  // Observe() inherits the caller's request context, so tail buckets of
  // this histogram carry the trace ids of real slow requests as exemplars.
  HOSR_HISTOGRAM("serve/request_latency_ms")
      .Observe(static_cast<double>(obs::NowNanos() - begin_ns) / 1e6);
  obs::HealthTracker::Global().ReportOutcome(!result.ok());
  if (!result.ok() &&
      result.status().code() == util::StatusCode::kDeadlineExceeded) {
    obs::FlightRecorder::Global().OnDeadlineExceeded();
  }
  return result;
}

util::StatusOr<ServeResponse> HardenedExecutor::ExecuteInternal(
    uint32_t user, uint32_t k, uint64_t token,
    Deadline request_deadline) const {
  Deadline wall_deadline =
      options_.use_wall_clock && options_.deadline_ms > 0.0
          ? std::chrono::steady_clock::now() +
                std::chrono::duration_cast<Deadline::duration>(
                    std::chrono::duration<double, std::milli>(
                        options_.deadline_ms))
          : kNoDeadline;

  RetryPolicy::Options retry_options = options_.retry;
  if (options_.deadline_ms > 0.0) {
    retry_options.budget_ms = options_.deadline_ms;
  }
  if (request_deadline != kNoDeadline) {
    // Per-request deadline (the network path): enforce against the wall
    // clock regardless of the options-level mode, and charge the retry
    // budget against the time actually remaining, never more than the
    // configured budget.
    wall_deadline = std::min(wall_deadline, request_deadline);
    const double remaining_ms =
        std::chrono::duration<double, std::milli>(request_deadline -
                                                  std::chrono::steady_clock::now())
            .count();
    if (remaining_ms <= 0.0) {
      HOSR_COUNTER("serve/deadline_exceeded").Increment();
      return util::Status::DeadlineExceeded("request deadline expired");
    }
    retry_options.budget_ms = retry_options.budget_ms > 0.0
                                  ? std::min(retry_options.budget_ms,
                                             remaining_ms)
                                  : remaining_ms;
  }
  RetryPolicy retry(retry_options, MixSeed(options_.seed, token));

  util::Status last_status = util::Status::Ok();
  bool engine_deadline_spent = false;
  for (int attempt = 0;; ++attempt) {
    auto result = engine_->TryTopKForUser(
        user, k, wall_deadline,
        token * kMaxAttemptsPerRequest + static_cast<uint64_t>(attempt));
    if (result.ok()) {
      return ServeResponse{std::move(result).value(), /*degraded=*/false};
    }
    last_status = result.status();
    if (last_status.code() == util::StatusCode::kDeadlineExceeded) {
      // The engine ran out of deadline mid-scan; no point retrying the
      // full scoring, but the cheap fallback can still answer.
      engine_deadline_spent = true;
      break;
    }
    if (!RetryPolicy::ShouldRetry(last_status)) {
      return last_status;  // hard error: bad request, corrupt state, ...
    }
    const double delay_ms = retry.NextDelayMs();
    if (delay_ms < 0.0) break;  // schedule exhausted
    HOSR_COUNTER("serve/retries").Increment();
    if (delay_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
    }
  }

  // Attempts (or deadline budget) exhausted. A blown budget means the
  // client's deadline has passed — answering late, even cheaply, is
  // useless. Otherwise degrade if we can.
  if (retry.BudgetBlown()) {
    HOSR_COUNTER("serve/deadline_exceeded").Increment();
    return util::Status::DeadlineExceeded(
        "retry budget exhausted: " + last_status.ToString());
  }
  if (options_.degraded != nullptr) {
    HOSR_COUNTER("serve/degraded").Increment();
    return ServeResponse{options_.degraded->TopK(user, k),
                         /*degraded=*/true};
  }
  if (engine_deadline_spent) {
    HOSR_COUNTER("serve/deadline_exceeded").Increment();
  }
  return last_status;
}

}  // namespace hosr::serve
