#ifndef HOSR_SERVE_BATCHER_H_
#define HOSR_SERVE_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/cache.h"
#include "serve/engine.h"
#include "util/statusor.h"

namespace hosr::serve {

using RankedItems = std::vector<uint32_t>;

// Bounded-queue request batcher: concurrent callers Submit() single-user
// top-K queries; a dispatcher thread coalesces them into batches that are
// embedding-matrix friendly (one TopKBatch per distinct K in the batch) and
// fulfills each request's future. An optional ResultCache short-circuits
// repeat queries and absorbs fresh results.
//
// Backpressure: Submit() blocks while the queue holds `queue_capacity`
// pending requests, bounding memory under overload instead of growing
// without limit. After Stop() (or destruction), further Submits fail with
// FailedPrecondition and queued requests are drained with Unavailable-style
// errors rather than broken promises.
class RequestBatcher {
 public:
  struct Options {
    size_t max_batch_size = 64;
    size_t queue_capacity = 4096;
    // How long the dispatcher lingers for more arrivals once it holds at
    // least one request but fewer than max_batch_size. 0 disables
    // coalescing waits (each wakeup drains whatever is queued).
    int64_t max_linger_us = 100;
    ResultCache* cache = nullptr;  // not owned; may be null
  };

  // `engine` must outlive the batcher.
  explicit RequestBatcher(const InferenceEngine* engine);  // default Options
  RequestBatcher(const InferenceEngine* engine, Options options);
  ~RequestBatcher();

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  // Enqueues one query. The future resolves to the ranked list, or to an
  // error Status for out-of-range users / k == 0 / shutdown.
  std::future<util::StatusOr<RankedItems>> Submit(uint32_t user, uint32_t k);

  // Stops accepting work, fails queued requests, joins the dispatcher.
  // Idempotent; also runs on destruction.
  void Stop();

 private:
  struct Request {
    uint32_t user;
    uint32_t k;
    std::promise<util::StatusOr<RankedItems>> promise;
  };

  void DispatchLoop();
  void ExecuteBatch(std::vector<Request> batch);

  const InferenceEngine* engine_;
  Options options_;

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable space_available_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  std::thread dispatcher_;
};

}  // namespace hosr::serve

#endif  // HOSR_SERVE_BATCHER_H_
