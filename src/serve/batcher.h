#ifndef HOSR_SERVE_BATCHER_H_
#define HOSR_SERVE_BATCHER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/context.h"
#include "serve/cache.h"
#include "serve/engine.h"
#include "serve/hardened.h"
#include "util/statusor.h"

namespace hosr::serve {

// Bounded-queue request batcher: concurrent callers Submit() single-user
// top-K queries; a dispatcher thread coalesces them into batches and
// fulfills each request's future through the HardenedExecutor pipeline
// (deadline -> retry -> degraded fallback). An optional ResultCache
// short-circuits repeat queries and absorbs fresh full-fidelity results.
//
// Admission control: a full queue sheds the request immediately with
// ResourceExhausted (counted as serve/shed) — Submit() never blocks — and
// a stopped batcher fails Submits with FailedPrecondition. Requests that
// expire while queued fail fast with DeadlineExceeded at dispatch instead
// of burning engine time. On Stop() (or destruction) every pending future
// is completed: queued requests drain with Unavailable, so no caller can
// hang on a promise the dispatcher will never fulfill.
//
// Tracing: Submit() captures the caller's obs::RequestContext and the pool
// worker that eventually executes the request re-installs it, so the
// request's spans and exemplars share one trace id across the thread
// handoff (docs/OBSERVABILITY.md "Request-scoped tracing").
class RequestBatcher {
 public:
  struct Options {
    size_t max_batch_size = 64;
    size_t queue_capacity = 4096;
    // How long the dispatcher lingers for more arrivals once it holds at
    // least one request but fewer than max_batch_size. 0 disables
    // coalescing waits (each wakeup drains whatever is queued).
    int64_t max_linger_us = 100;
    ResultCache* cache = nullptr;  // not owned; may be null
    // Per-request hardening (deadline budget, retry policy, degraded
    // fallback). The default is maximally permissive: no deadline, no
    // retries beyond the first attempt, no fallback.
    HardenedOptions hardened;
  };

  // `engine` must outlive the batcher.
  explicit RequestBatcher(const InferenceEngine* engine);  // default Options
  RequestBatcher(const InferenceEngine* engine, Options options);
  ~RequestBatcher();

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  // Enqueues one query. The future resolves to the served response, or to
  // an error Status: InvalidArgument/OutOfRange for bad requests,
  // ResourceExhausted when shed, FailedPrecondition after Stop(),
  // DeadlineExceeded when the request expired in the queue, Unavailable
  // when the batcher stopped with the request still queued.
  std::future<util::StatusOr<ServeResponse>> Submit(uint32_t user,
                                                    uint32_t k);

  // As above with an explicit absolute deadline (kNoDeadline disables).
  std::future<util::StatusOr<ServeResponse>> Submit(uint32_t user, uint32_t k,
                                                    Deadline deadline);

  // Stops accepting work, fails queued requests, joins the dispatcher.
  // Idempotent; also runs on destruction.
  void Stop();

 private:
  struct Request {
    uint32_t user;
    uint32_t k;
    Deadline deadline;
    uint64_t token;
    // The submitter's request context, re-installed on the executing
    // worker so spans/exemplars keep the request's trace id.
    obs::RequestContext context;
    std::promise<util::StatusOr<ServeResponse>> promise;
  };

  void DispatchLoop();
  void ExecuteBatch(std::vector<Request> batch);

  const InferenceEngine* engine_;
  Options options_;
  HardenedExecutor executor_;

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  std::atomic<uint64_t> next_token_{0};
  std::thread dispatcher_;
};

}  // namespace hosr::serve

#endif  // HOSR_SERVE_BATCHER_H_
