#ifndef HOSR_SERVE_RELOAD_H_
#define HOSR_SERVE_RELOAD_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "data/interactions.h"
#include "serve/cache.h"
#include "serve/degraded.h"
#include "serve/engine.h"
#include "serve/hardened.h"
#include "serve/snapshot.h"
#include "util/statusor.h"

namespace hosr::serve {

// One immutable generation of the serving stack: an InferenceEngine over a
// loaded snapshot plus the hardened pipeline built on top of it. A state is
// constructed whole, published atomically by the SnapshotManager, and never
// mutated afterwards — requests that acquired it keep it alive through the
// shared_ptr refcount, so a swap never invalidates an in-flight request.
class ServingState {
 public:
  ServingState(uint64_t version, std::string path, ModelSnapshot snapshot,
               const data::InteractionMatrix* seen, HardenedOptions hardened,
               bool degraded_fallback);

  ServingState(const ServingState&) = delete;
  ServingState& operator=(const ServingState&) = delete;

  uint64_t version() const { return version_; }
  const std::string& path() const { return path_; }
  // Wall-clock seconds when this state was built (admin /varz surface).
  int64_t load_unix_s() const { return load_unix_s_; }

  const InferenceEngine& engine() const { return engine_; }
  const HardenedExecutor& executor() const { return executor_; }

 private:
  uint64_t version_;
  std::string path_;
  int64_t load_unix_s_;
  InferenceEngine engine_;
  DegradedRanker degraded_;
  HardenedExecutor executor_;
};

// Zero-downtime snapshot hot-swap (docs/ROBUSTNESS.md "Hot reload &
// overload control"): owns an RCU-style atomic shared_ptr to the active
// ServingState. Request threads Acquire() the current state — one atomic
// shared_ptr load — and serve entirely from it; ReloadNow() (admin
// POST /reloadz) or the mtime watcher loads and validates a candidate OFF
// the serving threads, then swaps the pointer. In-flight requests finish on
// the state they acquired; every later Acquire() sees the new one.
//
// Validation gate, in order, all failures rolling back to the active state:
//   1. snapshot.load fault point (chaos hook for the soak harness);
//   2. LoadSnapshot — whole-file CRC footer + magic/version/endian/shape
//      header checks via the existing reader;
//   3. shape check — the candidate must keep the active user/item space
//      (the seen-item exclusion lists and live request streams are indexed
//      by it);
//   4. reload.validate fault point;
//   5. probe-query gate — a fixed spread of `probe_users` users is scored
//      through the candidate engine; any error, empty ranking, or
//      non-finite score rejects the candidate.
//
// A rejected reload increments serve/reload_rejected, bumps the
// HealthTracker reload-failure streak (two consecutive rejects degrade
// /healthz), notes + dumps through the flight recorder when armed, and
// leaves the active state untouched. A successful swap bumps
// serve/reloads, publishes serve/active_snapshot_version, advances the
// ResultCache generation (pre-swap entries become misses, in-flight stale
// Puts are dropped), and resets the failure streak.
class SnapshotManager {
 public:
  struct Options {
    // Snapshot artifact to load at Create() and to watch for changes.
    std::string path;
    // Per-user seen-item exclusion, borrowed; must outlive the manager.
    const data::InteractionMatrix* seen = nullptr;
    // Hardening config for each state's executor.
    HardenedOptions hardened;
    // Build a popularity fallback ranker per state.
    bool degraded_fallback = true;
    // Probe-query gate: this many users spread across the id space, each
    // asked for a top-`probe_k` ranking.
    uint32_t probe_users = 8;
    uint32_t probe_k = 10;
    // Watcher poll cadence; <= 0 leaves the watcher off even if
    // StartWatcher() is called.
    double poll_interval_s = 0.5;
    // Generation-advanced on every swap, borrowed; may be null.
    ResultCache* cache = nullptr;
  };

  struct Stats {
    uint64_t active_version = 0;
    std::string active_path;
    int64_t active_load_unix_s = 0;
    uint64_t reloads_ok = 0;       // successful swaps after the initial load
    uint64_t reloads_rejected = 0;
    uint64_t reject_streak = 0;    // consecutive rejects since the last swap
  };

  // Loads and validates the initial snapshot (same gate as a reload).
  // `preloaded` skips re-reading options.path when the caller already holds
  // the parsed snapshot (hosr_serve loads it for metadata first).
  static util::StatusOr<std::unique_ptr<SnapshotManager>> Create(
      Options options, std::optional<ModelSnapshot> preloaded = std::nullopt);

  ~SnapshotManager();

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  // The RCU read side: the current state, kept alive at least as long as
  // the returned pointer. One atomic shared_ptr load; call per request.
  std::shared_ptr<const ServingState> Acquire() const;

  // Loads + validates + swaps synchronously (empty `path` reloads
  // options.path). Serialized against other reloads and the watcher; on
  // any failure the active state is untouched and the error returned.
  util::Status ReloadNow(const std::string& path = "");

  // Starts the mtime/size poller over options.path (no-op when
  // poll_interval_s <= 0 or already running). A changed file triggers one
  // reload attempt; a rejected candidate is not retried until the file
  // changes again.
  void StartWatcher();

  // Stops the watcher thread (idempotent; also runs on destruction).
  void Stop();

  Stats GetStats() const;

  // Invoked (under the reload lock) after the initial load and after every
  // reload attempt — success or reject — with fresh stats. Hosts publish
  // /varz state from here.
  void SetReloadListener(std::function<void(const Stats&)> listener);

 private:
  SnapshotManager(Options options);

  // The validation gate. Returns the candidate state ready to publish.
  util::StatusOr<std::shared_ptr<const ServingState>> LoadAndValidate(
      const std::string& path, uint64_t version,
      std::optional<ModelSnapshot> preloaded);
  // Shared tail of Create()/ReloadNow(): runs the gate, swaps or rolls
  // back, maintains counters/streaks/listener. Caller holds reload_mutex_.
  util::Status ReloadLocked(const std::string& path,
                            std::optional<ModelSnapshot> preloaded);
  // `baseline` is the watched file's fingerprint captured synchronously in
  // StartWatcher(), so a replace that lands before the thread first runs
  // still registers as a change.
  void WatchLoop(std::string baseline);
  void NotifyListenerLocked();

  Options options_;
  std::atomic<std::shared_ptr<const ServingState>> active_;

  mutable std::mutex reload_mutex_;  // serializes reload attempts
  uint64_t reloads_ok_ = 0;
  uint64_t reloads_rejected_ = 0;
  uint64_t reject_streak_ = 0;
  std::function<void(const Stats&)> listener_;

  std::mutex watcher_mutex_;
  std::condition_variable watcher_cv_;
  bool watcher_stop_ = false;
  std::thread watcher_;
};

}  // namespace hosr::serve

#endif  // HOSR_SERVE_RELOAD_H_
