#ifndef HOSR_SERVE_RETRY_H_
#define HOSR_SERVE_RETRY_H_

#include <cstdint>

#include "util/random.h"
#include "util/status.h"

namespace hosr::serve {

// Retry schedule for transient errors: exponential backoff with
// decorrelated jitter (each delay is drawn uniformly from
// [initial_backoff_ms, min(max_backoff_ms, 3 * previous_delay)]), capped by
// both an attempt count and a total-delay budget. Delays are drawn from a
// caller-seeded stream, so a request's whole retry schedule is a pure
// function of its token — deterministic under fault injection regardless
// of thread interleaving.
struct RetryPolicy {
  struct Options {
    // Total tries including the first; 1 disables retries.
    int max_attempts = 2;
    double initial_backoff_ms = 1.0;
    double max_backoff_ms = 4.0;
    // Cap on the cumulative planned backoff. <= 0 means "no budget cap";
    // callers with a deadline pass their remaining milliseconds.
    double budget_ms = 0.0;
  };

  explicit RetryPolicy(Options options, uint64_t seed);

  // True when `status` is worth another attempt at all (transient per
  // util::Status::IsTransient) — the attempt/budget caps are separate.
  static bool ShouldRetry(const util::Status& status) {
    return status.IsTransient();
  }

  // Plans the next backoff delay and charges it against the budget.
  // Returns a negative value when the schedule is exhausted — either
  // `max_attempts` tries have been consumed or the budget cannot cover the
  // planned delay (the caller should stop retrying; BudgetBlown()
  // distinguishes the two).
  double NextDelayMs();

  int attempts() const { return attempts_; }
  double spent_ms() const { return spent_ms_; }
  // True when the schedule stopped because the delay budget (deadline) was
  // exhausted rather than the attempt cap.
  bool BudgetBlown() const { return budget_blown_; }

 private:
  Options options_;
  util::Rng rng_;
  int attempts_ = 1;  // the first attempt is implicit
  double spent_ms_ = 0.0;
  double previous_delay_ms_ = 0.0;
  bool budget_blown_ = false;
};

}  // namespace hosr::serve

#endif  // HOSR_SERVE_RETRY_H_
