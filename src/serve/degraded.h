#ifndef HOSR_SERVE_DEGRADED_H_
#define HOSR_SERVE_DEGRADED_H_

#include <cstdint>
#include <vector>

#include "serve/engine.h"

namespace hosr::serve {

// Fallback ranker for graceful degradation: a precomputed global popularity
// ranking served when the full engine faults or a request's deadline is
// nearly spent. The paper's own ablation — most of HOSR's signal lives in
// the low-order hops — is what makes a popularity answer an acceptable
// stand-in: it is the zero-hop prior.
//
// Popularity source, in preference order:
//   1. training interaction counts (the engine's seen-item lists),
//   2. the snapshot's item bias,
//   3. the item factor's L2 norm (a magnitude proxy).
// Ties break toward the lower item id, so the ranking is deterministic.
//
// TopK() walks the precomputed order skipping the user's seen items: O(k +
// |seen ∩ head|) with no floating-point work, so it answers in nanoseconds
// even when the engine cannot.
class DegradedRanker {
 public:
  // `engine` must outlive the ranker.
  explicit DegradedRanker(const InferenceEngine* engine);

  // Top-k most popular items the user has not seen, best first.
  RankedItems TopK(uint32_t user, uint32_t k) const;

  // The full precomputed ranking (diagnostics / tests).
  const std::vector<uint32_t>& ranking() const { return ranked_items_; }

 private:
  const InferenceEngine* engine_;
  std::vector<uint32_t> ranked_items_;  // all items, most popular first
};

}  // namespace hosr::serve

#endif  // HOSR_SERVE_DEGRADED_H_
