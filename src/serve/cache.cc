#include "serve/cache.h"

#include <algorithm>
#include <bit>

#include "obs/metrics.h"
#include "util/logging.h"

namespace hosr::serve {

ResultCache::ResultCache() : ResultCache(Options{}) {}

ResultCache::ResultCache(Options options) : capacity_(options.capacity) {
  HOSR_CHECK(options.capacity > 0);
  HOSR_CHECK(options.num_shards > 0);
  // Round the shard count to a power of two no larger than the capacity so
  // every shard holds at least one entry.
  const size_t shards = std::bit_floor(std::min(options.num_shards,
                                                options.capacity));
  shards_ = std::vector<Shard>(shards);
  per_shard_capacity_ = (capacity_ + shards - 1) / shards;
  shard_bits_ = static_cast<unsigned>(std::bit_width(shards) - 1);
}

std::optional<std::vector<uint32_t>> ResultCache::Get(uint32_t user,
                                                      uint32_t k,
                                                      uint64_t generation) {
  const uint64_t key = Key(user, k);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    HOSR_COUNTER("serve/cache_misses").Increment();
    return std::nullopt;
  }
  if (it->second->second.generation != generation) {
    // Written under a different snapshot: never serve it, reclaim now.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.stale_hits;
    ++shard.misses;
    HOSR_COUNTER("serve/cache_stale_hits").Increment();
    HOSR_COUNTER("serve/cache_misses").Increment();
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  HOSR_COUNTER("serve/cache_hits").Increment();
  return it->second->second.items;
}

void ResultCache::Put(uint32_t user, uint32_t k, std::vector<uint32_t> items,
                      uint64_t generation) {
  if (generation != generation_.load(std::memory_order_acquire)) {
    // Computed under a snapshot the cache has moved past; storing it would
    // re-poison the cache with pre-swap scores.
    Shard& shard = ShardFor(Key(user, k));
    std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.stale_puts;
    HOSR_COUNTER("serve/cache_stale_puts").Increment();
    return;
  }
  const uint64_t key = Key(user, k);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = Entry{generation, std::move(items)};
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, Entry{generation, std::move(items)});
  shard.index.emplace(key, shard.lru.begin());
  if (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
    HOSR_COUNTER("serve/cache_evictions").Increment();
  }
}

void ResultCache::Advance(uint64_t generation) {
  generation_.store(generation, std::memory_order_release);
}

void ResultCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.lru.clear();
    shard.index.clear();
  }
}

ResultCache::Stats ResultCache::GetStats() const {
  Stats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.evictions += shard.evictions;
    stats.stale_hits += shard.stale_hits;
    stats.stale_puts += shard.stale_puts;
    stats.entries += shard.lru.size();
  }
  return stats;
}

double ResultCache::HitRate() const {
  const Stats stats = GetStats();
  const uint64_t total = stats.hits + stats.misses;
  return total == 0 ? 0.0
                    : static_cast<double>(stats.hits) /
                          static_cast<double>(total);
}

}  // namespace hosr::serve
