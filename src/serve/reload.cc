#include "serve/reload.h"

#include <sys/stat.h>

#include <chrono>
#include <cmath>
#include <ctime>
#include <utility>

#include "fault/fault.h"
#include "obs/admin_server.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace hosr::serve {

namespace {

// Patches the per-state fallback pointer: HardenedOptions carries a borrowed
// DegradedRanker*, and each ServingState owns its own ranker, so the pointer
// must be rewritten per state (or cleared when fallback is off).
HardenedOptions WithFallback(HardenedOptions hardened,
                             const DegradedRanker* degraded) {
  hardened.degraded = degraded;
  return hardened;
}

// stat(2) identity of the watched artifact, encoded for trivial equality.
// The inode is load-bearing: the write-sibling-then-rename publish always
// allocates a fresh inode, while mtime comes from the kernel's coarse
// clock — a same-size replacement landing within one tick of the original
// is invisible to (mtime, size) alone. An unreadable / missing path
// encodes as "" so it never matches a real fingerprint (and never
// triggers a reload by itself).
std::string FingerprintOf(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return std::string();
  return util::StrFormat(
      "%llu:%llu:%lld.%09lld:%lld", static_cast<unsigned long long>(st.st_dev),
      static_cast<unsigned long long>(st.st_ino),
      static_cast<long long>(st.st_mtim.tv_sec),
      static_cast<long long>(st.st_mtim.tv_nsec),
      static_cast<long long>(st.st_size));
}

}  // namespace

ServingState::ServingState(uint64_t version, std::string path,
                           ModelSnapshot snapshot,
                           const data::InteractionMatrix* seen,
                           HardenedOptions hardened, bool degraded_fallback)
    : version_(version),
      path_(std::move(path)),
      load_unix_s_(static_cast<int64_t>(std::time(nullptr))),
      engine_(std::move(snapshot), seen),
      degraded_(&engine_),
      executor_(&engine_,
                WithFallback(hardened,
                             degraded_fallback ? &degraded_ : nullptr)) {}

SnapshotManager::SnapshotManager(Options options)
    : options_(std::move(options)) {}

SnapshotManager::~SnapshotManager() { Stop(); }

util::StatusOr<std::unique_ptr<SnapshotManager>> SnapshotManager::Create(
    Options options, std::optional<ModelSnapshot> preloaded) {
  if (options.path.empty()) {
    return util::Status::InvalidArgument("SnapshotManager needs a path");
  }
  std::unique_ptr<SnapshotManager> manager(
      new SnapshotManager(std::move(options)));
  {
    std::lock_guard<std::mutex> lock(manager->reload_mutex_);
    HOSR_RETURN_IF_ERROR(manager->ReloadLocked(manager->options_.path,
                                               std::move(preloaded)));
  }
  return manager;
}

std::shared_ptr<const ServingState> SnapshotManager::Acquire() const {
  return active_.load(std::memory_order_acquire);
}

util::Status SnapshotManager::ReloadNow(const std::string& path) {
  std::lock_guard<std::mutex> lock(reload_mutex_);
  return ReloadLocked(path.empty() ? options_.path : path, std::nullopt);
}

util::Status SnapshotManager::ReloadLocked(
    const std::string& path, std::optional<ModelSnapshot> preloaded) {
  const std::shared_ptr<const ServingState> previous =
      active_.load(std::memory_order_acquire);
  const uint64_t version = previous != nullptr ? previous->version() + 1 : 1;

  auto candidate = LoadAndValidate(path, version, std::move(preloaded));
  if (!candidate.ok()) {
    reloads_rejected_ += 1;
    reject_streak_ += 1;
    HOSR_COUNTER("serve/reload_rejected").Increment();
    obs::HealthTracker::Global().ReportReload(/*ok=*/false);
    HOSR_LOG(Warning) << "reload rejected (active v"
                      << (previous != nullptr ? previous->version() : 0)
                      << " keeps serving): " << candidate.status();
    if (obs::FlightRecorder::Global().armed()) {
      obs::FlightRecorder::Global().Note(util::StrFormat(
          "reload rejected: %s (candidate %s, streak %llu)",
          candidate.status().ToString().c_str(), path.c_str(),
          static_cast<unsigned long long>(reject_streak_)));
      (void)obs::FlightRecorder::Global().DumpNow("reload_rejected");
    }
    NotifyListenerLocked();
    return candidate.status();
  }

  active_.store(std::move(candidate).value(), std::memory_order_release);
  if (options_.cache != nullptr) {
    // Pre-swap entries become misses and racing Puts from requests still on
    // the old state are dropped — a post-swap query can never observe
    // pre-swap scores (the stale-cache hazard).
    options_.cache->Advance(version);
  }
  reject_streak_ = 0;
  obs::HealthTracker::Global().ReportReload(/*ok=*/true);
  HOSR_GAUGE("serve/active_snapshot_version")
      .Set(static_cast<double>(version));
  if (version > 1) {
    reloads_ok_ += 1;
    HOSR_COUNTER("serve/reloads").Increment();
  }
  HOSR_LOG(Info) << "snapshot v" << version << " active (" << path << ")";
  if (obs::FlightRecorder::Global().armed()) {
    obs::FlightRecorder::Global().Note(util::StrFormat(
        "snapshot swapped: v%llu from %s",
        static_cast<unsigned long long>(version), path.c_str()));
  }
  NotifyListenerLocked();
  return util::Status::Ok();
}

util::StatusOr<std::shared_ptr<const ServingState>>
SnapshotManager::LoadAndValidate(const std::string& path, uint64_t version,
                                 std::optional<ModelSnapshot> preloaded) {
  // Chaos hook for the soak harness: a torn disk read / NFS hiccup.
  HOSR_RETURN_IF_ERROR(fault::Inject("snapshot.load"));

  ModelSnapshot snapshot;
  if (preloaded.has_value()) {
    snapshot = std::move(preloaded).value();
  } else {
    // CRC footer + magic/version/endian/shape checks: corrupt or truncated
    // candidates surface here as clean Status errors.
    HOSR_ASSIGN_OR_RETURN(snapshot, LoadSnapshot(path));
  }

  // The user/item space is load-bearing: seen-item exclusion lists, cached
  // results, and in-flight request streams are all indexed by it. A
  // candidate that changes it is a different serving universe, not a
  // refresh — reject before the engine ctor can CHECK-fail on it.
  const std::shared_ptr<const ServingState> current =
      active_.load(std::memory_order_acquire);
  if (current != nullptr &&
      (snapshot.num_users() != current->engine().num_users() ||
       snapshot.num_items() != current->engine().num_items())) {
    return util::Status::FailedPrecondition(util::StrFormat(
        "candidate %ux%u does not match active %ux%u",
        snapshot.num_users(), snapshot.num_items(),
        current->engine().num_users(), current->engine().num_items()));
  }
  if (options_.seen != nullptr &&
      (snapshot.num_users() != options_.seen->num_users() ||
       snapshot.num_items() != options_.seen->num_items())) {
    return util::Status::FailedPrecondition(util::StrFormat(
        "candidate %ux%u does not match seen-item matrix %ux%u",
        snapshot.num_users(), snapshot.num_items(),
        options_.seen->num_users(), options_.seen->num_items()));
  }

  const std::shared_ptr<const ServingState> state =
      std::make_shared<const ServingState>(
          version, path, std::move(snapshot), options_.seen,
          options_.hardened, options_.degraded_fallback);

  HOSR_RETURN_IF_ERROR(fault::Inject("reload.validate"));

  // Probe-query gate: score a fixed spread of users through the candidate
  // before anyone can be routed to it. Probes run with kNoFaultToken, so an
  // armed engine.score chaos spec cannot veto a healthy snapshot.
  const uint32_t num_users = state->engine().num_users();
  const uint32_t probes = std::min(options_.probe_users, num_users);
  for (uint32_t j = 0; j < probes; ++j) {
    const uint32_t user = static_cast<uint32_t>(
        static_cast<uint64_t>(j) * num_users / probes);
    auto probe = state->engine().TryTopKForUser(user, options_.probe_k,
                                                kNoDeadline, kNoFaultToken);
    if (!probe.ok()) {
      return util::Status::DataLoss(util::StrFormat(
          "probe query failed for user %u: %s", user,
          probe.status().ToString().c_str()));
    }
    if (probe->empty()) {
      return util::Status::DataLoss(
          util::StrFormat("probe query empty for user %u", user));
    }
    for (const uint32_t item : *probe) {
      const float score = state->engine().snapshot().Score(user, item);
      if (!std::isfinite(score)) {
        return util::Status::DataLoss(util::StrFormat(
            "non-finite score %f for user %u item %u", score, user, item));
      }
    }
  }
  return state;
}

void SnapshotManager::StartWatcher() {
  if (options_.poll_interval_s <= 0.0) return;
  std::lock_guard<std::mutex> lock(watcher_mutex_);
  if (watcher_.joinable()) return;
  watcher_stop_ = false;
  // The baseline is captured here, not in the thread: once StartWatcher()
  // returns, any replacement of the artifact — even one that lands before
  // the watcher thread is first scheduled — reads as a change.
  watcher_ = std::thread(
      [this, baseline = FingerprintOf(options_.path)]() mutable {
        WatchLoop(std::move(baseline));
      });
}

void SnapshotManager::Stop() {
  {
    std::lock_guard<std::mutex> lock(watcher_mutex_);
    watcher_stop_ = true;
  }
  watcher_cv_.notify_all();
  if (watcher_.joinable()) watcher_.join();
}

void SnapshotManager::WatchLoop(std::string baseline) {
  // The file as fingerprinted at StartWatcher() is the baseline; a rejected
  // candidate is remembered too, so the watcher does not hammer a bad
  // artifact — it retries only once the file changes again.
  std::string last_attempted = std::move(baseline);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(watcher_mutex_);
      watcher_cv_.wait_for(
          lock, std::chrono::duration<double>(options_.poll_interval_s),
          [this] { return watcher_stop_; });
      if (watcher_stop_) return;
    }
    const std::string now = FingerprintOf(options_.path);
    if (now.empty() || now == last_attempted) continue;
    last_attempted = now;
    HOSR_COUNTER("serve/reload_watch_triggers").Increment();
    (void)ReloadNow(options_.path);  // outcome recorded in stats/counters
  }
}

SnapshotManager::Stats SnapshotManager::GetStats() const {
  std::lock_guard<std::mutex> lock(reload_mutex_);
  Stats stats;
  const std::shared_ptr<const ServingState> state =
      active_.load(std::memory_order_acquire);
  if (state != nullptr) {
    stats.active_version = state->version();
    stats.active_path = state->path();
    stats.active_load_unix_s = state->load_unix_s();
  }
  stats.reloads_ok = reloads_ok_;
  stats.reloads_rejected = reloads_rejected_;
  stats.reject_streak = reject_streak_;
  return stats;
}

void SnapshotManager::SetReloadListener(
    std::function<void(const Stats&)> listener) {
  std::lock_guard<std::mutex> lock(reload_mutex_);
  listener_ = std::move(listener);
  NotifyListenerLocked();
}

void SnapshotManager::NotifyListenerLocked() {
  if (!listener_) return;
  Stats stats;
  const std::shared_ptr<const ServingState> state =
      active_.load(std::memory_order_acquire);
  if (state != nullptr) {
    stats.active_version = state->version();
    stats.active_path = state->path();
    stats.active_load_unix_s = state->load_unix_s();
  }
  stats.reloads_ok = reloads_ok_;
  stats.reloads_rejected = reloads_rejected_;
  stats.reject_streak = reject_streak_;
  listener_(stats);
}

}  // namespace hosr::serve
