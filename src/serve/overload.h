#ifndef HOSR_SERVE_OVERLOAD_H_
#define HOSR_SERVE_OVERLOAD_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace hosr::serve {

// Adaptive overload control for the serving front end (docs/ROBUSTNESS.md
// "Hot reload & overload control"): a sliding-window circuit breaker that
// fast-fails new work while the backend is drowning, and a queue-delay
// estimator that turns measured admission-queue wait into an early shed
// signal. Both are deliberately tiny mutex-guarded state machines — one
// lock + a ring update per request is noise next to a blocked GEMV — and
// both are deterministic given a fixed outcome sequence, so tests drive
// them without sleeping.

// Sliding-window circuit breaker over request outcomes.
//
//   Closed    — everything admitted; outcomes land in a fixed-size ring.
//               When at least `min_samples` of the last `window` outcomes
//               exist and the failure ratio reaches `trip_ratio`, trip.
//   Open      — every Admit() refused (callers shed with ResourceExhausted
//               at the wire) for `open_ms`, then half-open.
//   Half-open — up to `half_open_probes` requests admitted as probes. Any
//               probe failure re-opens (fresh cooldown); `half_open_probes`
//               consecutive successes close the breaker and clear the
//               window, forgetting the storm.
//
// Breaker rejections themselves are never reported back into the window —
// they would keep the failure ratio pinned and the breaker open forever.
// The serve/breaker_state gauge mirrors the state (0 closed, 1 open,
// 2 half-open) and serve/breaker_trips counts Closed->Open transitions.
class CircuitBreaker {
 public:
  enum class State : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  struct Options {
    size_t window = 256;        // outcomes kept in the sliding ring
    size_t min_samples = 32;    // below this the breaker never trips
    double trip_ratio = 0.5;    // windowed failure ratio that trips
    double open_ms = 250.0;     // cooldown before half-open probing
    size_t half_open_probes = 8;  // consecutive successes needed to close
  };

  explicit CircuitBreaker(Options options);

  // True when the request may proceed. False = shed without executing
  // (counted in Stats::rejected). Thread-safe.
  bool Admit();

  // Reports one *executed* request's outcome (failed = deadline exceeded,
  // shed downstream, or hard error). Never report a breaker rejection.
  void ReportOutcome(bool failed);

  State state() const;

  struct Stats {
    State state = State::kClosed;
    uint64_t rejected = 0;      // Admit() == false
    uint64_t trips = 0;         // Closed/HalfOpen -> Open transitions
    double failure_ratio = 0.0; // over the current window
    size_t samples = 0;
  };
  Stats GetStats() const;

 private:
  using Clock = std::chrono::steady_clock;

  // Callers hold mutex_.
  double FailureRatioLocked() const;
  void TransitionLocked(State next);

  Options options_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  std::vector<uint8_t> ring_;  // 1 = failed
  size_t ring_size_ = 0;       // occupied entries (<= options_.window)
  size_t ring_next_ = 0;       // write cursor
  size_t ring_failed_ = 0;     // failures currently in the ring
  Clock::time_point opened_at_{};
  size_t probes_issued_ = 0;   // half-open: admitted probes
  size_t probe_successes_ = 0;
  uint64_t rejected_ = 0;
  uint64_t trips_ = 0;
};

// Exponentially-weighted estimate of admission-queue wait, in milliseconds.
// The acceptor records every connection's time-in-queue when a worker claims
// it; when the smoothed wait exceeds the configured bound, new connections
// are shed at the wire *before* they pile more latency onto the queue —
// admission control from measured delay rather than a fixed queue length.
// Decay() halves the estimate and is called when the queue is observed
// empty, so a stale storm-era estimate cannot shed the first connection of
// a quiet period.
class QueueDelayEwma {
 public:
  explicit QueueDelayEwma(double alpha = 0.2) : alpha_(alpha) {}

  void Record(double wait_ms);
  void Decay();
  double value_ms() const;

 private:
  double alpha_;
  bool seeded_ = false;
  mutable std::mutex mutex_;
  double value_ms_ = 0.0;
};

}  // namespace hosr::serve

#endif  // HOSR_SERVE_OVERLOAD_H_
