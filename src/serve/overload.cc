#include "serve/overload.h"

#include "obs/metrics.h"
#include "util/logging.h"

namespace hosr::serve {

CircuitBreaker::CircuitBreaker(Options options) : options_(options) {
  HOSR_CHECK(options_.window > 0);
  HOSR_CHECK(options_.min_samples > 0);
  HOSR_CHECK(options_.trip_ratio > 0.0);
  HOSR_CHECK(options_.half_open_probes > 0);
  ring_.assign(options_.window, 0);
}

double CircuitBreaker::FailureRatioLocked() const {
  if (ring_size_ == 0) return 0.0;
  return static_cast<double>(ring_failed_) / static_cast<double>(ring_size_);
}

void CircuitBreaker::TransitionLocked(State next) {
  if (state_ == next) return;
  state_ = next;
  HOSR_GAUGE("serve/breaker_state").Set(static_cast<double>(next));
  if (next == State::kOpen) {
    trips_ += 1;
    HOSR_COUNTER("serve/breaker_trips").Increment();
    opened_at_ = Clock::now();
    probes_issued_ = 0;
    probe_successes_ = 0;
  } else if (next == State::kHalfOpen) {
    probes_issued_ = 0;
    probe_successes_ = 0;
  } else {  // closed again: the storm is over, forget it
    ring_.assign(options_.window, 0);
    ring_size_ = 0;
    ring_next_ = 0;
    ring_failed_ = 0;
  }
}

bool CircuitBreaker::Admit() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == State::kOpen) {
    const double waited_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - opened_at_)
            .count();
    if (waited_ms < options_.open_ms) {
      rejected_ += 1;
      HOSR_COUNTER("serve/breaker_rejected").Increment();
      return false;
    }
    TransitionLocked(State::kHalfOpen);
  }
  if (state_ == State::kHalfOpen) {
    if (probes_issued_ >= options_.half_open_probes) {
      // Probe budget already in flight; everyone else still sheds until the
      // probes report back.
      rejected_ += 1;
      HOSR_COUNTER("serve/breaker_rejected").Increment();
      return false;
    }
    probes_issued_ += 1;
    return true;
  }
  return true;
}

void CircuitBreaker::ReportOutcome(bool failed) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == State::kHalfOpen) {
    if (failed) {
      // The backend is still drowning; a fresh cooldown starts now.
      TransitionLocked(State::kOpen);
      return;
    }
    probe_successes_ += 1;
    if (probe_successes_ >= options_.half_open_probes) {
      TransitionLocked(State::kClosed);
    }
    return;
  }
  if (state_ == State::kOpen) return;  // stale report from a pre-trip request

  // Closed: slide the window and check the trip condition.
  if (ring_size_ == options_.window) {
    ring_failed_ -= ring_[ring_next_];
  } else {
    ring_size_ += 1;
  }
  ring_[ring_next_] = failed ? 1 : 0;
  ring_failed_ += failed ? 1 : 0;
  ring_next_ = (ring_next_ + 1) % options_.window;
  if (ring_size_ >= options_.min_samples &&
      FailureRatioLocked() >= options_.trip_ratio) {
    TransitionLocked(State::kOpen);
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

CircuitBreaker::Stats CircuitBreaker::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.state = state_;
  stats.rejected = rejected_;
  stats.trips = trips_;
  stats.failure_ratio = FailureRatioLocked();
  stats.samples = ring_size_;
  return stats;
}

void QueueDelayEwma::Record(double wait_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!seeded_) {
    // The first observation seeds the estimate outright: warming up from
    // zero would read a sudden storm as alpha * wait and under-shed for
    // the first ~1/alpha connections.
    value_ms_ = wait_ms;
    seeded_ = true;
    return;
  }
  value_ms_ = alpha_ * wait_ms + (1.0 - alpha_) * value_ms_;
}

void QueueDelayEwma::Decay() {
  std::lock_guard<std::mutex> lock(mutex_);
  value_ms_ *= 0.5;
}

double QueueDelayEwma::value_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return value_ms_;
}

}  // namespace hosr::serve
