#ifndef HOSR_SERVE_ENGINE_H_
#define HOSR_SERVE_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "data/interactions.h"
#include "serve/snapshot.h"

namespace hosr::serve {

using RankedItems = std::vector<uint32_t>;

// Absolute per-request deadline. kNoDeadline disables enforcement.
using Deadline = std::chrono::steady_clock::time_point;
inline constexpr Deadline kNoDeadline = Deadline::max();

// Fault-injection token sentinel: skip the engine.score injection point
// (used by the unhardened legacy entry points).
inline constexpr uint64_t kNoFaultToken = ~0ull - 1;

struct EngineOptions {
  // Items are scored in blocks of this many rows so the per-query score
  // scratch stays cache-resident even for catalogs in the millions.
  uint32_t item_block = 2048;
  // Minimum users per thread-pool chunk in TopKBatch. 0 (the default)
  // sizes the chunk with util::GrainFor from the per-user scoring work
  // (num_items * dim); set explicitly to override the heuristic.
  size_t min_users_per_chunk = 0;
};

// Answers top-K queries over a frozen ModelSnapshot: a blocked GEMV over
// the item-factor matrix feeds an eval::TopKAccumulator (the evaluator's
// selection, so offline and served rankings agree exactly), with the
// user's already-consumed training items filtered out. Stateless per query
// and safe to call from any number of threads concurrently; TopKBatch
// additionally shards a batch across util::ThreadPool::Global().
class InferenceEngine {
 public:
  // `seen` (optional) supplies per-user items to exclude from results —
  // typically the training interactions. Its user/item spaces must match
  // the snapshot. The item lists are copied; `seen` may die afterwards.
  InferenceEngine(ModelSnapshot snapshot, const data::InteractionMatrix* seen,
                  EngineOptions options = {});
  explicit InferenceEngine(ModelSnapshot snapshot)
      : InferenceEngine(std::move(snapshot), nullptr) {}

  uint32_t num_users() const { return snapshot_.num_users(); }
  uint32_t num_items() const { return snapshot_.num_items(); }
  uint32_t dim() const { return snapshot_.dim(); }
  const ModelSnapshot& snapshot() const { return snapshot_; }

  // Top-K items for one user, best first, seen items excluded. Runs on the
  // calling thread. `user` must be < num_users(), k >= 1; K larger than
  // the candidate count returns every candidate ranked.
  std::vector<uint32_t> TopKForUser(uint32_t user, uint32_t k) const;

  // Status-returning, deadline-aware variant — the serving path. Invalid
  // users / k return InvalidArgument/OutOfRange instead of aborting; an
  // expired `deadline` fails fast with DeadlineExceeded (also checked
  // between item blocks, so a query never overruns its deadline by more
  // than one block of scoring); and the `engine.score` fault-injection
  // point runs with `fault_token` so injected failures are a deterministic
  // function of the request (docs/ROBUSTNESS.md).
  util::StatusOr<RankedItems> TryTopKForUser(
      uint32_t user, uint32_t k, Deadline deadline = kNoDeadline,
      uint64_t fault_token = kNoFaultToken) const;

  // One ranked list per user, sharded across the global thread pool.
  std::vector<std::vector<uint32_t>> TopKBatch(
      const std::vector<uint32_t>& users, uint32_t k) const;

  // The per-user exclusion list (empty when the engine was built without
  // seen-item filtering). Sorted ascending; used by DegradedRanker.
  const std::vector<uint32_t>& SeenItems(uint32_t user) const;

  // Full unfiltered score vector for one user — the reference the blocked
  // kernel is tested against, and a debugging aid.
  std::vector<float> ScoreAll(uint32_t user) const;

 private:
  // The one scoring kernel, shared by TopKForUser and TryTopKForUser:
  // blocked GEMV + TopKAccumulator, plus deadline checks, the engine.score
  // fault point, and Status plumbing. With kNoDeadline/kNoFaultToken both
  // hardening branches are single never-taken compares, so the legacy path
  // pays only the StatusOr wrapper per query.
  util::StatusOr<RankedItems> TopKImpl(uint32_t user, uint32_t k,
                                       Deadline deadline,
                                       uint64_t fault_token) const;

  ModelSnapshot snapshot_;
  EngineOptions options_;
  // Per-user sorted exclusion lists; empty when no `seen` was given.
  std::vector<std::vector<uint32_t>> seen_;
};

}  // namespace hosr::serve

#endif  // HOSR_SERVE_ENGINE_H_
