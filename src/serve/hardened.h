#ifndef HOSR_SERVE_HARDENED_H_
#define HOSR_SERVE_HARDENED_H_

#include <cstdint>

#include "serve/degraded.h"
#include "serve/engine.h"
#include "serve/retry.h"
#include "util/statusor.h"

namespace hosr::serve {

// A served ranking plus how it was produced: `degraded` marks popularity
// fallback results so clients can distinguish them from full-engine answers.
struct ServeResponse {
  RankedItems items;
  bool degraded = false;
};

struct HardenedOptions {
  RetryPolicy::Options retry;
  // Per-request latency budget in milliseconds; 0 disables deadlines.
  double deadline_ms = 0.0;
  // Fallback ranker; null disables degraded serving (failures propagate).
  const DegradedRanker* degraded = nullptr;
  // Seeds the per-request retry jitter streams.
  uint64_t seed = 1;
  // When true the deadline is also enforced against the wall clock (the
  // engine sees an absolute deadline and queue-expired requests fail
  // fast). When false only the deterministic budget accounting below
  // applies — the mode fault-injection tests run in, so outcome counts are
  // bit-reproducible across runs (docs/ROBUSTNESS.md).
  bool use_wall_clock = false;
};

// Per-request hardening pipeline shared by the RequestBatcher and the
// hosr_serve replay driver. One Execute() call is one request:
//
//   1. deadline gate — an already-expired request fails fast with
//      DeadlineExceeded (never reaches the engine);
//   2. engine attempt — TryTopKForUser with the request's fault token;
//   3. retry — transient errors (Unavailable, ResourceExhausted) back off
//      with decorrelated jitter and try again, capped by max_attempts and
//      by the deadline budget: every planned backoff is charged against
//      deadline_ms, so a request never sleeps past its deadline;
//   4. degrade — when attempts are exhausted (or the engine itself ran out
//      of deadline mid-scan) and budget remains, the DegradedRanker serves
//      a popularity answer flagged `degraded = true`;
//   5. give up — a blown budget is DeadlineExceeded; anything else
//      propagates the engine's last status.
//
// Outcome counters: serve/deadline_exceeded, serve/degraded, serve/retries.
// Each Execute() also records a "serve/request" span and an observation in
// the serve/request_latency_ms histogram (carrying the caller's request
// context as an exemplar), reports the outcome to obs::HealthTracker
// (deadline-exceeded and hard errors count against health), and notifies
// the flight recorder on deadline-exceeded so bursts trigger a dump.
//
// Determinism: the retry schedule is seeded by (seed, token) and fault
// decisions by (fault seed, token, attempt), so with use_wall_clock off a
// request's outcome is a pure function of its token.
class HardenedExecutor {
 public:
  // `engine` (and `options.degraded`, when set) must outlive the executor.
  HardenedExecutor(const InferenceEngine* engine, HardenedOptions options);

  // Serves one request. `token` must uniquely identify the request within
  // the run (e.g. its stream index). Thread-safe.
  util::StatusOr<ServeResponse> Execute(uint32_t user, uint32_t k,
                                        uint64_t token) const;

  // As above with an explicit absolute wall-clock deadline for THIS request
  // (the network path: a client's wire deadline_ms, converted at decode
  // time). kNoDeadline falls back to the configured options. A per-request
  // deadline is always wall-clock enforced — it lands in the engine's
  // per-block checks and caps the retry budget at the remaining time, and
  // tightens (never loosens) any options-level deadline_ms.
  util::StatusOr<ServeResponse> Execute(uint32_t user, uint32_t k,
                                        uint64_t token,
                                        Deadline deadline) const;

  const HardenedOptions& options() const { return options_; }

 private:
  // The un-instrumented pipeline; Execute() wraps it with span/latency/
  // health/flight-recorder bookkeeping.
  util::StatusOr<ServeResponse> ExecuteInternal(uint32_t user, uint32_t k,
                                                uint64_t token,
                                                Deadline deadline) const;

  const InferenceEngine* engine_;
  HardenedOptions options_;
};

}  // namespace hosr::serve

#endif  // HOSR_SERVE_HARDENED_H_
