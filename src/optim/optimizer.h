#ifndef HOSR_OPTIM_OPTIMIZER_H_
#define HOSR_OPTIM_OPTIMIZER_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "autograd/param.h"
#include "util/statusor.h"

namespace hosr::optim {

// Per-parameter row selection for Optimizer::StepRows, indexed like the
// ParamStore. `dense` updates every row (same as Step for that parameter);
// otherwise only `rows` (which must be sorted and unique) are updated, and
// an empty list skips the parameter entirely this step.
struct RowSet {
  bool dense = false;
  std::vector<uint32_t> rows;
};

// Base class for first-order optimizers over a ParamStore. Optimizers apply
// decoupled L2 regularization (`weight_decay` = the paper's lambda): the
// update sees grad + weight_decay * value.
class Optimizer {
 public:
  explicit Optimizer(float learning_rate, float weight_decay = 0.0f)
      : learning_rate_(learning_rate), weight_decay_(weight_decay) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  // Applies one update from the accumulated gradients, then leaves the
  // gradients untouched (caller zeroes via ParamStore::ZeroGrad).
  virtual void Step(autograd::ParamStore* params) = 0;

  // Row-sparse update: applies the exact per-row arithmetic Step would —
  // bitwise, including state updates — but only to the rows selected in
  // `plan` (one RowSet per parameter). Rows outside the plan keep their
  // values AND their optimizer state, which makes weight decay *lazy*: an
  // untouched embedding row skips this step's decay entirely. That is a
  // deliberate semantic difference from dense Step, so the trainer records
  // sparse-vs-dense in the checkpoint config identity. The base fallback
  // ignores the plan and runs a dense Step.
  virtual void StepRows(autograd::ParamStore* params,
                        const std::vector<RowSet>& plan) {
    (void)plan;
    Step(params);
  }

  virtual std::string name() const = 0;

  // Serializes the optimizer's internal state (momentum/moment accumulators,
  // step counters) so training can resume bit-identically after a crash.
  // The format is optimizer-specific; a checkpoint written by one optimizer
  // must be restored by the same optimizer type (the trainer checkpoint
  // records the name and enforces this). Saving before the first Step() is
  // valid and round-trips the lazy-unallocated state.
  virtual util::Status SaveState(std::ostream* out) const = 0;
  virtual util::Status LoadState(std::istream* in) = 0;

  float learning_rate() const { return learning_rate_; }
  void set_learning_rate(float lr) { learning_rate_ = lr; }
  float weight_decay() const { return weight_decay_; }

 protected:
  // grad + weight_decay * value, element i of parameter p.
  float RegularizedGrad(const autograd::Param& p, size_t i) const {
    return p.grad.data()[i] + weight_decay_ * p.value.data()[i];
  }

  float learning_rate_;
  float weight_decay_;
};

// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(float learning_rate, float weight_decay = 0.0f, float momentum = 0.0f)
      : Optimizer(learning_rate, weight_decay), momentum_(momentum) {}

  void Step(autograd::ParamStore* params) override;
  void StepRows(autograd::ParamStore* params,
                const std::vector<RowSet>& plan) override;
  std::string name() const override { return "sgd"; }
  util::Status SaveState(std::ostream* out) const override;
  util::Status LoadState(std::istream* in) override;

 private:
  // rows == nullptr updates all num_rows rows in order (the dense path).
  void UpdateRows(autograd::Param* p, tensor::Matrix* vel,
                  const uint32_t* rows, size_t num_rows);

  float momentum_;
  std::vector<tensor::Matrix> velocity_;
};

// RMSprop (Hinton lecture 6a) — the optimizer the paper trains with.
class RmsProp : public Optimizer {
 public:
  RmsProp(float learning_rate, float weight_decay = 0.0f, float decay = 0.9f,
          float epsilon = 1e-8f)
      : Optimizer(learning_rate, weight_decay),
        decay_(decay),
        epsilon_(epsilon) {}

  void Step(autograd::ParamStore* params) override;
  void StepRows(autograd::ParamStore* params,
                const std::vector<RowSet>& plan) override;
  std::string name() const override { return "rmsprop"; }
  util::Status SaveState(std::ostream* out) const override;
  util::Status LoadState(std::istream* in) override;

 private:
  void UpdateRows(autograd::Param* p, tensor::Matrix* ms,
                  const uint32_t* rows, size_t num_rows);

  float decay_;
  float epsilon_;
  std::vector<tensor::Matrix> mean_square_;
};

// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(float learning_rate, float weight_decay = 0.0f, float beta1 = 0.9f,
       float beta2 = 0.999f, float epsilon = 1e-8f)
      : Optimizer(learning_rate, weight_decay),
        beta1_(beta1),
        beta2_(beta2),
        epsilon_(epsilon) {}

  void Step(autograd::ParamStore* params) override;
  void StepRows(autograd::ParamStore* params,
                const std::vector<RowSet>& plan) override;
  std::string name() const override { return "adam"; }
  util::Status SaveState(std::ostream* out) const override;
  util::Status LoadState(std::istream* in) override;

 private:
  // Bias correction uses the global step counter t_ (incremented once per
  // Step/StepRows call), the standard lazy-Adam convention: a row updated
  // less often still sees the global-schedule correction.
  void UpdateRows(autograd::Param* p, tensor::Matrix* m, tensor::Matrix* v,
                  float bias1, float bias2, const uint32_t* rows,
                  size_t num_rows);

  float beta1_;
  float beta2_;
  float epsilon_;
  int64_t t_ = 0;
  std::vector<tensor::Matrix> m_;
  std::vector<tensor::Matrix> v_;
};

// AdaGrad (Duchi et al.).
class AdaGrad : public Optimizer {
 public:
  AdaGrad(float learning_rate, float weight_decay = 0.0f,
          float epsilon = 1e-8f)
      : Optimizer(learning_rate, weight_decay), epsilon_(epsilon) {}

  void Step(autograd::ParamStore* params) override;
  void StepRows(autograd::ParamStore* params,
                const std::vector<RowSet>& plan) override;
  std::string name() const override { return "adagrad"; }
  util::Status SaveState(std::ostream* out) const override;
  util::Status LoadState(std::istream* in) override;

 private:
  void UpdateRows(autograd::Param* p, tensor::Matrix* acc,
                  const uint32_t* rows, size_t num_rows);

  float epsilon_;
  std::vector<tensor::Matrix> accum_;
};

// Factory by name: "sgd", "rmsprop", "adam", "adagrad".
std::unique_ptr<Optimizer> MakeOptimizer(const std::string& name,
                                         float learning_rate,
                                         float weight_decay);

}  // namespace hosr::optim

#endif  // HOSR_OPTIM_OPTIMIZER_H_
