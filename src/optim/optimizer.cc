#include "optim/optimizer.h"

#include <cmath>

#include "util/logging.h"

namespace hosr::optim {

namespace {

// Lazily sizes per-parameter optimizer state to match the store.
void EnsureState(const autograd::ParamStore& params,
                 std::vector<tensor::Matrix>* state) {
  if (state->size() == params.size()) return;
  HOSR_CHECK(state->empty())
      << "parameter store changed size after optimization started";
  state->reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const autograd::Param* p = params.at(i);
    state->emplace_back(p->value.rows(), p->value.cols());
  }
}

}  // namespace

void Sgd::Step(autograd::ParamStore* params) {
  EnsureState(*params, &velocity_);
  for (size_t i = 0; i < params->size(); ++i) {
    autograd::Param* p = params->at(i);
    float* value = p->value.data();
    float* vel = velocity_[i].data();
    const size_t n = p->value.size();
    for (size_t j = 0; j < n; ++j) {
      const float g = RegularizedGrad(*p, j);
      if (momentum_ != 0.0f) {
        vel[j] = momentum_ * vel[j] + g;
        value[j] -= learning_rate_ * vel[j];
      } else {
        value[j] -= learning_rate_ * g;
      }
    }
  }
}

void RmsProp::Step(autograd::ParamStore* params) {
  EnsureState(*params, &mean_square_);
  for (size_t i = 0; i < params->size(); ++i) {
    autograd::Param* p = params->at(i);
    float* value = p->value.data();
    float* ms = mean_square_[i].data();
    const size_t n = p->value.size();
    for (size_t j = 0; j < n; ++j) {
      const float g = RegularizedGrad(*p, j);
      ms[j] = decay_ * ms[j] + (1.0f - decay_) * g * g;
      value[j] -= learning_rate_ * g / (std::sqrt(ms[j]) + epsilon_);
    }
  }
}

void Adam::Step(autograd::ParamStore* params) {
  EnsureState(*params, &m_);
  EnsureState(*params, &v_);
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params->size(); ++i) {
    autograd::Param* p = params->at(i);
    float* value = p->value.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const size_t n = p->value.size();
    for (size_t j = 0; j < n; ++j) {
      const float g = RegularizedGrad(*p, j);
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      value[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

void AdaGrad::Step(autograd::ParamStore* params) {
  EnsureState(*params, &accum_);
  for (size_t i = 0; i < params->size(); ++i) {
    autograd::Param* p = params->at(i);
    float* value = p->value.data();
    float* acc = accum_[i].data();
    const size_t n = p->value.size();
    for (size_t j = 0; j < n; ++j) {
      const float g = RegularizedGrad(*p, j);
      acc[j] += g * g;
      value[j] -= learning_rate_ * g / (std::sqrt(acc[j]) + epsilon_);
    }
  }
}

std::unique_ptr<Optimizer> MakeOptimizer(const std::string& name,
                                         float learning_rate,
                                         float weight_decay) {
  if (name == "sgd") {
    return std::make_unique<Sgd>(learning_rate, weight_decay);
  }
  if (name == "rmsprop") {
    return std::make_unique<RmsProp>(learning_rate, weight_decay);
  }
  if (name == "adam") {
    return std::make_unique<Adam>(learning_rate, weight_decay);
  }
  if (name == "adagrad") {
    return std::make_unique<AdaGrad>(learning_rate, weight_decay);
  }
  HOSR_CHECK(false) << "unknown optimizer: " << name;
  return nullptr;
}

}  // namespace hosr::optim
