#include "optim/optimizer.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "tensor/serialize.h"
#include "util/logging.h"

namespace hosr::optim {

namespace {

// Optimizer state matrices are framed as a count followed by the matrices
// themselves (tensor::WriteMatrix format). Sane-count guard: a trainer
// checkpoint never carries more slots than parameters, and no model in this
// codebase has anywhere near this many.
constexpr uint64_t kMaxStateSlots = 1u << 20;

util::Status WriteStateVector(const std::vector<tensor::Matrix>& state,
                              std::ostream* out) {
  const uint64_t count = state.size();
  out->write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const tensor::Matrix& m : state) {
    HOSR_RETURN_IF_ERROR(tensor::WriteMatrix(m, out));
  }
  if (!*out) return util::Status::IoError("failed writing optimizer state");
  return util::Status::Ok();
}

util::Status ReadStateVector(std::istream* in,
                             std::vector<tensor::Matrix>* state) {
  uint64_t count = 0;
  in->read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!*in) return util::Status::IoError("failed reading optimizer state");
  if (count > kMaxStateSlots) {
    return util::Status::DataLoss("implausible optimizer state slot count: " +
                                  std::to_string(count));
  }
  std::vector<tensor::Matrix> loaded;
  loaded.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    HOSR_ASSIGN_OR_RETURN(tensor::Matrix m, tensor::ReadMatrix(in));
    loaded.push_back(std::move(m));
  }
  *state = std::move(loaded);
  return util::Status::Ok();
}

// Lazily sizes per-parameter optimizer state to match the store.
void EnsureState(const autograd::ParamStore& params,
                 std::vector<tensor::Matrix>* state) {
  if (state->size() == params.size()) return;
  HOSR_CHECK(state->empty())
      << "parameter store changed size after optimization started";
  state->reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const autograd::Param* p = params.at(i);
    state->emplace_back(p->value.rows(), p->value.cols());
  }
}

// Applies a per-parameter RowSet plan by dispatching to `update_rows`.
// Parameters with an empty, non-dense RowSet are skipped entirely (lazy).
template <typename UpdateRowsFn>
void ApplyPlan(autograd::ParamStore* params, const std::vector<RowSet>& plan,
               UpdateRowsFn&& update_rows) {
  HOSR_CHECK(plan.size() == params->size())
      << "row plan has " << plan.size() << " entries for " << params->size()
      << " parameters";
  for (size_t i = 0; i < params->size(); ++i) {
    autograd::Param* p = params->at(i);
    const RowSet& rs = plan[i];
    if (rs.dense) {
      update_rows(i, p, nullptr, p->value.rows());
    } else if (!rs.rows.empty()) {
      HOSR_CHECK(rs.rows.back() < p->value.rows())
          << "row " << rs.rows.back() << " out of range for parameter " << i;
      update_rows(i, p, rs.rows.data(), rs.rows.size());
    }
  }
}

}  // namespace

// The dense Step of each optimizer below is a flat element loop rewritten
// as row iteration; row-major storage makes the element order — and thus
// every float operation — identical to the original flat loop, and the
// same helper serves StepRows so the sparse path is bitwise the dense
// per-row update. The dense path deliberately stays single-threaded: it is
// the baseline the parallel trainer's benchmarks compare against.

void Sgd::UpdateRows(autograd::Param* p, tensor::Matrix* vel,
                     const uint32_t* rows, size_t num_rows) {
  const size_t cols = p->value.cols();
  for (size_t k = 0; k < num_rows; ++k) {
    const size_t r = rows != nullptr ? rows[k] : k;
    float* value = p->value.row(r);
    const float* grad = p->grad.row(r);
    float* v = vel->row(r);
    for (size_t c = 0; c < cols; ++c) {
      const float g = grad[c] + weight_decay_ * value[c];
      if (momentum_ != 0.0f) {
        v[c] = momentum_ * v[c] + g;
        value[c] -= learning_rate_ * v[c];
      } else {
        value[c] -= learning_rate_ * g;
      }
    }
  }
}

void Sgd::Step(autograd::ParamStore* params) {
  EnsureState(*params, &velocity_);
  for (size_t i = 0; i < params->size(); ++i) {
    autograd::Param* p = params->at(i);
    UpdateRows(p, &velocity_[i], nullptr, p->value.rows());
  }
}

void Sgd::StepRows(autograd::ParamStore* params,
                   const std::vector<RowSet>& plan) {
  EnsureState(*params, &velocity_);
  ApplyPlan(params, plan,
            [this](size_t i, autograd::Param* p, const uint32_t* rows,
                   size_t num_rows) {
              UpdateRows(p, &velocity_[i], rows, num_rows);
            });
}

void RmsProp::UpdateRows(autograd::Param* p, tensor::Matrix* ms,
                         const uint32_t* rows, size_t num_rows) {
  const size_t cols = p->value.cols();
  for (size_t k = 0; k < num_rows; ++k) {
    const size_t r = rows != nullptr ? rows[k] : k;
    float* value = p->value.row(r);
    const float* grad = p->grad.row(r);
    float* m = ms->row(r);
    for (size_t c = 0; c < cols; ++c) {
      const float g = grad[c] + weight_decay_ * value[c];
      m[c] = decay_ * m[c] + (1.0f - decay_) * g * g;
      value[c] -= learning_rate_ * g / (std::sqrt(m[c]) + epsilon_);
    }
  }
}

void RmsProp::Step(autograd::ParamStore* params) {
  EnsureState(*params, &mean_square_);
  for (size_t i = 0; i < params->size(); ++i) {
    autograd::Param* p = params->at(i);
    UpdateRows(p, &mean_square_[i], nullptr, p->value.rows());
  }
}

void RmsProp::StepRows(autograd::ParamStore* params,
                       const std::vector<RowSet>& plan) {
  EnsureState(*params, &mean_square_);
  ApplyPlan(params, plan,
            [this](size_t i, autograd::Param* p, const uint32_t* rows,
                   size_t num_rows) {
              UpdateRows(p, &mean_square_[i], rows, num_rows);
            });
}

void Adam::UpdateRows(autograd::Param* p, tensor::Matrix* m_state,
                      tensor::Matrix* v_state, float bias1, float bias2,
                      const uint32_t* rows, size_t num_rows) {
  const size_t cols = p->value.cols();
  for (size_t k = 0; k < num_rows; ++k) {
    const size_t r = rows != nullptr ? rows[k] : k;
    float* value = p->value.row(r);
    const float* grad = p->grad.row(r);
    float* m = m_state->row(r);
    float* v = v_state->row(r);
    for (size_t c = 0; c < cols; ++c) {
      const float g = grad[c] + weight_decay_ * value[c];
      m[c] = beta1_ * m[c] + (1.0f - beta1_) * g;
      v[c] = beta2_ * v[c] + (1.0f - beta2_) * g * g;
      const float m_hat = m[c] / bias1;
      const float v_hat = v[c] / bias2;
      value[c] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

void Adam::Step(autograd::ParamStore* params) {
  EnsureState(*params, &m_);
  EnsureState(*params, &v_);
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params->size(); ++i) {
    autograd::Param* p = params->at(i);
    UpdateRows(p, &m_[i], &v_[i], bias1, bias2, nullptr, p->value.rows());
  }
}

void Adam::StepRows(autograd::ParamStore* params,
                    const std::vector<RowSet>& plan) {
  EnsureState(*params, &m_);
  EnsureState(*params, &v_);
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  ApplyPlan(params, plan,
            [this, bias1, bias2](size_t i, autograd::Param* p,
                                 const uint32_t* rows, size_t num_rows) {
              UpdateRows(p, &m_[i], &v_[i], bias1, bias2, rows, num_rows);
            });
}

void AdaGrad::UpdateRows(autograd::Param* p, tensor::Matrix* acc_state,
                         const uint32_t* rows, size_t num_rows) {
  const size_t cols = p->value.cols();
  for (size_t k = 0; k < num_rows; ++k) {
    const size_t r = rows != nullptr ? rows[k] : k;
    float* value = p->value.row(r);
    const float* grad = p->grad.row(r);
    float* acc = acc_state->row(r);
    for (size_t c = 0; c < cols; ++c) {
      const float g = grad[c] + weight_decay_ * value[c];
      acc[c] += g * g;
      value[c] -= learning_rate_ * g / (std::sqrt(acc[c]) + epsilon_);
    }
  }
}

void AdaGrad::Step(autograd::ParamStore* params) {
  EnsureState(*params, &accum_);
  for (size_t i = 0; i < params->size(); ++i) {
    autograd::Param* p = params->at(i);
    UpdateRows(p, &accum_[i], nullptr, p->value.rows());
  }
}

void AdaGrad::StepRows(autograd::ParamStore* params,
                       const std::vector<RowSet>& plan) {
  EnsureState(*params, &accum_);
  ApplyPlan(params, plan,
            [this](size_t i, autograd::Param* p, const uint32_t* rows,
                   size_t num_rows) {
              UpdateRows(p, &accum_[i], rows, num_rows);
            });
}

util::Status Sgd::SaveState(std::ostream* out) const {
  return WriteStateVector(velocity_, out);
}

util::Status Sgd::LoadState(std::istream* in) {
  return ReadStateVector(in, &velocity_);
}

util::Status RmsProp::SaveState(std::ostream* out) const {
  return WriteStateVector(mean_square_, out);
}

util::Status RmsProp::LoadState(std::istream* in) {
  return ReadStateVector(in, &mean_square_);
}

util::Status Adam::SaveState(std::ostream* out) const {
  out->write(reinterpret_cast<const char*>(&t_), sizeof(t_));
  HOSR_RETURN_IF_ERROR(WriteStateVector(m_, out));
  return WriteStateVector(v_, out);
}

util::Status Adam::LoadState(std::istream* in) {
  int64_t t = 0;
  in->read(reinterpret_cast<char*>(&t), sizeof(t));
  if (!*in) return util::Status::IoError("failed reading adam step counter");
  if (t < 0) {
    return util::Status::DataLoss("negative adam step counter: " +
                                  std::to_string(t));
  }
  std::vector<tensor::Matrix> m, v;
  HOSR_RETURN_IF_ERROR(ReadStateVector(in, &m));
  HOSR_RETURN_IF_ERROR(ReadStateVector(in, &v));
  t_ = t;
  m_ = std::move(m);
  v_ = std::move(v);
  return util::Status::Ok();
}

util::Status AdaGrad::SaveState(std::ostream* out) const {
  return WriteStateVector(accum_, out);
}

util::Status AdaGrad::LoadState(std::istream* in) {
  return ReadStateVector(in, &accum_);
}

std::unique_ptr<Optimizer> MakeOptimizer(const std::string& name,
                                         float learning_rate,
                                         float weight_decay) {
  if (name == "sgd") {
    return std::make_unique<Sgd>(learning_rate, weight_decay);
  }
  if (name == "rmsprop") {
    return std::make_unique<RmsProp>(learning_rate, weight_decay);
  }
  if (name == "adam") {
    return std::make_unique<Adam>(learning_rate, weight_decay);
  }
  if (name == "adagrad") {
    return std::make_unique<AdaGrad>(learning_rate, weight_decay);
  }
  HOSR_CHECK(false) << "unknown optimizer: " << name;
  return nullptr;
}

}  // namespace hosr::optim
