#include "optim/optimizer.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "tensor/serialize.h"
#include "util/logging.h"

namespace hosr::optim {

namespace {

// Optimizer state matrices are framed as a count followed by the matrices
// themselves (tensor::WriteMatrix format). Sane-count guard: a trainer
// checkpoint never carries more slots than parameters, and no model in this
// codebase has anywhere near this many.
constexpr uint64_t kMaxStateSlots = 1u << 20;

util::Status WriteStateVector(const std::vector<tensor::Matrix>& state,
                              std::ostream* out) {
  const uint64_t count = state.size();
  out->write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const tensor::Matrix& m : state) {
    HOSR_RETURN_IF_ERROR(tensor::WriteMatrix(m, out));
  }
  if (!*out) return util::Status::IoError("failed writing optimizer state");
  return util::Status::Ok();
}

util::Status ReadStateVector(std::istream* in,
                             std::vector<tensor::Matrix>* state) {
  uint64_t count = 0;
  in->read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!*in) return util::Status::IoError("failed reading optimizer state");
  if (count > kMaxStateSlots) {
    return util::Status::DataLoss("implausible optimizer state slot count: " +
                                  std::to_string(count));
  }
  std::vector<tensor::Matrix> loaded;
  loaded.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    HOSR_ASSIGN_OR_RETURN(tensor::Matrix m, tensor::ReadMatrix(in));
    loaded.push_back(std::move(m));
  }
  *state = std::move(loaded);
  return util::Status::Ok();
}

// Lazily sizes per-parameter optimizer state to match the store.
void EnsureState(const autograd::ParamStore& params,
                 std::vector<tensor::Matrix>* state) {
  if (state->size() == params.size()) return;
  HOSR_CHECK(state->empty())
      << "parameter store changed size after optimization started";
  state->reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const autograd::Param* p = params.at(i);
    state->emplace_back(p->value.rows(), p->value.cols());
  }
}

}  // namespace

void Sgd::Step(autograd::ParamStore* params) {
  EnsureState(*params, &velocity_);
  for (size_t i = 0; i < params->size(); ++i) {
    autograd::Param* p = params->at(i);
    float* value = p->value.data();
    float* vel = velocity_[i].data();
    const size_t n = p->value.size();
    for (size_t j = 0; j < n; ++j) {
      const float g = RegularizedGrad(*p, j);
      if (momentum_ != 0.0f) {
        vel[j] = momentum_ * vel[j] + g;
        value[j] -= learning_rate_ * vel[j];
      } else {
        value[j] -= learning_rate_ * g;
      }
    }
  }
}

void RmsProp::Step(autograd::ParamStore* params) {
  EnsureState(*params, &mean_square_);
  for (size_t i = 0; i < params->size(); ++i) {
    autograd::Param* p = params->at(i);
    float* value = p->value.data();
    float* ms = mean_square_[i].data();
    const size_t n = p->value.size();
    for (size_t j = 0; j < n; ++j) {
      const float g = RegularizedGrad(*p, j);
      ms[j] = decay_ * ms[j] + (1.0f - decay_) * g * g;
      value[j] -= learning_rate_ * g / (std::sqrt(ms[j]) + epsilon_);
    }
  }
}

void Adam::Step(autograd::ParamStore* params) {
  EnsureState(*params, &m_);
  EnsureState(*params, &v_);
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params->size(); ++i) {
    autograd::Param* p = params->at(i);
    float* value = p->value.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const size_t n = p->value.size();
    for (size_t j = 0; j < n; ++j) {
      const float g = RegularizedGrad(*p, j);
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      value[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

void AdaGrad::Step(autograd::ParamStore* params) {
  EnsureState(*params, &accum_);
  for (size_t i = 0; i < params->size(); ++i) {
    autograd::Param* p = params->at(i);
    float* value = p->value.data();
    float* acc = accum_[i].data();
    const size_t n = p->value.size();
    for (size_t j = 0; j < n; ++j) {
      const float g = RegularizedGrad(*p, j);
      acc[j] += g * g;
      value[j] -= learning_rate_ * g / (std::sqrt(acc[j]) + epsilon_);
    }
  }
}

util::Status Sgd::SaveState(std::ostream* out) const {
  return WriteStateVector(velocity_, out);
}

util::Status Sgd::LoadState(std::istream* in) {
  return ReadStateVector(in, &velocity_);
}

util::Status RmsProp::SaveState(std::ostream* out) const {
  return WriteStateVector(mean_square_, out);
}

util::Status RmsProp::LoadState(std::istream* in) {
  return ReadStateVector(in, &mean_square_);
}

util::Status Adam::SaveState(std::ostream* out) const {
  out->write(reinterpret_cast<const char*>(&t_), sizeof(t_));
  HOSR_RETURN_IF_ERROR(WriteStateVector(m_, out));
  return WriteStateVector(v_, out);
}

util::Status Adam::LoadState(std::istream* in) {
  int64_t t = 0;
  in->read(reinterpret_cast<char*>(&t), sizeof(t));
  if (!*in) return util::Status::IoError("failed reading adam step counter");
  if (t < 0) {
    return util::Status::DataLoss("negative adam step counter: " +
                                  std::to_string(t));
  }
  std::vector<tensor::Matrix> m, v;
  HOSR_RETURN_IF_ERROR(ReadStateVector(in, &m));
  HOSR_RETURN_IF_ERROR(ReadStateVector(in, &v));
  t_ = t;
  m_ = std::move(m);
  v_ = std::move(v);
  return util::Status::Ok();
}

util::Status AdaGrad::SaveState(std::ostream* out) const {
  return WriteStateVector(accum_, out);
}

util::Status AdaGrad::LoadState(std::istream* in) {
  return ReadStateVector(in, &accum_);
}

std::unique_ptr<Optimizer> MakeOptimizer(const std::string& name,
                                         float learning_rate,
                                         float weight_decay) {
  if (name == "sgd") {
    return std::make_unique<Sgd>(learning_rate, weight_decay);
  }
  if (name == "rmsprop") {
    return std::make_unique<RmsProp>(learning_rate, weight_decay);
  }
  if (name == "adam") {
    return std::make_unique<Adam>(learning_rate, weight_decay);
  }
  if (name == "adagrad") {
    return std::make_unique<AdaGrad>(learning_rate, weight_decay);
  }
  HOSR_CHECK(false) << "unknown optimizer: " << name;
  return nullptr;
}

}  // namespace hosr::optim
