#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "util/thread_pool.h"

namespace hosr::tensor {

namespace {

// Minimum elements per task chunk; below this, threading overhead dominates.
constexpr size_t kParallelGrain = 16 * 1024;

void CheckSameShape(const Matrix& a, const Matrix& b) {
  HOSR_CHECK(a.SameShape(b)) << a.rows() << "x" << a.cols() << " vs "
                             << b.rows() << "x" << b.cols();
}

}  // namespace

void Gemm(const Matrix& a, bool transpose_a, const Matrix& b, bool transpose_b,
          float alpha, float beta, Matrix* out) {
  const size_t m = transpose_a ? a.cols() : a.rows();
  const size_t k = transpose_a ? a.rows() : a.cols();
  const size_t k2 = transpose_b ? b.cols() : b.rows();
  const size_t n = transpose_b ? b.rows() : b.cols();
  HOSR_CHECK(k == k2) << "inner dims " << k << " vs " << k2;
  HOSR_CHECK(out->rows() == m && out->cols() == n)
      << "out " << out->rows() << "x" << out->cols() << " want " << m << "x"
      << n;
  HOSR_CHECK(out != &a && out != &b) << "Gemm does not support aliasing";

  // i-k-j loop order keeps the inner loop streaming over contiguous rows of
  // the (possibly logically transposed) operands. For transposed B we
  // materialize nothing: B^T(kk, j) = B(j, kk) is strided, so instead we use
  // the j-major inner loop with an accumulator.
  util::ParallelFor(
      0, m,
      [&](size_t row_begin, size_t row_end) {
        for (size_t i = row_begin; i < row_end; ++i) {
          float* out_row = out->row(i);
          if (beta == 0.0f) {
            std::fill(out_row, out_row + n, 0.0f);
          } else if (beta != 1.0f) {
            for (size_t j = 0; j < n; ++j) out_row[j] *= beta;
          }
          if (!transpose_b) {
            for (size_t kk = 0; kk < k; ++kk) {
              const float a_ik =
                  transpose_a ? a(kk, i) : a(i, kk);
              if (a_ik == 0.0f) continue;
              const float scaled = alpha * a_ik;
              const float* b_row = b.row(kk);
              for (size_t j = 0; j < n; ++j) out_row[j] += scaled * b_row[j];
            }
          } else {
            for (size_t j = 0; j < n; ++j) {
              const float* b_row = b.row(j);
              float acc = 0.0f;
              for (size_t kk = 0; kk < k; ++kk) {
                const float a_ik = transpose_a ? a(kk, i) : a(i, kk);
                acc += a_ik * b_row[kk];
              }
              out_row[j] += alpha * acc;
            }
          }
        }
      },
      std::max<size_t>(1, kParallelGrain / std::max<size_t>(1, n * k)));
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  Gemm(a, false, b, false, 1.0f, 0.0f, &out);
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  Matrix out = a;
  const float* bp = b.data();
  float* op = out.data();
  for (size_t i = 0; i < out.size(); ++i) op[i] += bp[i];
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  Matrix out = a;
  const float* bp = b.data();
  float* op = out.data();
  for (size_t i = 0; i < out.size(); ++i) op[i] -= bp[i];
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  Matrix out = a;
  const float* bp = b.data();
  float* op = out.data();
  for (size_t i = 0; i < out.size(); ++i) op[i] *= bp[i];
  return out;
}

Matrix Scale(const Matrix& a, float s) {
  Matrix out = a;
  float* op = out.data();
  for (size_t i = 0; i < out.size(); ++i) op[i] *= s;
  return out;
}

void Axpy(float alpha, const Matrix& b, Matrix* a) {
  CheckSameShape(*a, b);
  float* ap = a->data();
  const float* bp = b.data();
  const size_t n = a->size();
  for (size_t i = 0; i < n; ++i) ap[i] += alpha * bp[i];
}

void Apply(Matrix* m, float (*fn)(float)) {
  float* p = m->data();
  const size_t n = m->size();
  util::ParallelFor(
      0, n,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) p[i] = fn(p[i]);
      },
      kParallelGrain);
}

Matrix Tanh(const Matrix& a) {
  Matrix out = a;
  Apply(&out, [](float x) { return std::tanh(x); });
  return out;
}

Matrix Relu(const Matrix& a) {
  Matrix out = a;
  Apply(&out, [](float x) { return x > 0.0f ? x : 0.0f; });
  return out;
}

Matrix Sigmoid(const Matrix& a) {
  Matrix out = a;
  Apply(&out, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
  return out;
}

Matrix RowDot(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  Matrix out(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* ar = a.row(r);
    const float* br = b.row(r);
    float acc = 0.0f;
    for (size_t c = 0; c < a.cols(); ++c) acc += ar[c] * br[c];
    out(r, 0) = acc;
  }
  return out;
}

Matrix RowSum(const Matrix& a) {
  Matrix out(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* ar = a.row(r);
    float acc = 0.0f;
    for (size_t c = 0; c < a.cols(); ++c) acc += ar[c];
    out(r, 0) = acc;
  }
  return out;
}

Matrix ColSum(const Matrix& a) {
  Matrix out(1, a.cols());
  float* op = out.data();
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* ar = a.row(r);
    for (size_t c = 0; c < a.cols(); ++c) op[c] += ar[c];
  }
  return out;
}

Matrix RowSoftmax(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* ar = a.row(r);
    float* orow = out.row(r);
    float max_val = ar[0];
    for (size_t c = 1; c < a.cols(); ++c) max_val = std::max(max_val, ar[c]);
    float denom = 0.0f;
    for (size_t c = 0; c < a.cols(); ++c) {
      orow[c] = std::exp(ar[c] - max_val);
      denom += orow[c];
    }
    const float inv = 1.0f / denom;
    for (size_t c = 0; c < a.cols(); ++c) orow[c] *= inv;
  }
  return out;
}

Matrix BroadcastColMul(const Matrix& a, const Matrix& scale) {
  HOSR_CHECK(scale.rows() == a.rows() && scale.cols() == 1)
      << "scale must be (" << a.rows() << " x 1), got " << scale.rows() << "x"
      << scale.cols();
  Matrix out = a;
  for (size_t r = 0; r < a.rows(); ++r) {
    const float s = scale(r, 0);
    float* orow = out.row(r);
    for (size_t c = 0; c < a.cols(); ++c) orow[c] *= s;
  }
  return out;
}

Matrix GatherRows(const Matrix& a, const std::vector<uint32_t>& indices) {
  Matrix out(indices.size(), a.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    HOSR_CHECK(indices[i] < a.rows()) << indices[i] << " >= " << a.rows();
    std::copy(a.row(indices[i]), a.row(indices[i]) + a.cols(), out.row(i));
  }
  return out;
}

void ScatterAddRows(const Matrix& a, const std::vector<uint32_t>& indices,
                    Matrix* out) {
  HOSR_CHECK(indices.size() == a.rows());
  HOSR_CHECK(out->cols() == a.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    HOSR_CHECK(indices[i] < out->rows());
    const float* src = a.row(i);
    float* dst = out->row(indices[i]);
    for (size_t c = 0; c < a.cols(); ++c) dst[c] += src[c];
  }
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* ar = a.row(r);
    for (size_t c = 0; c < a.cols(); ++c) out(c, r) = ar[c];
  }
  return out;
}

double SquaredNorm(const Matrix& a) {
  double acc = 0.0;
  const float* p = a.data();
  for (size_t i = 0; i < a.size(); ++i) acc += static_cast<double>(p[i]) * p[i];
  return acc;
}

double Sum(const Matrix& a) {
  double acc = 0.0;
  const float* p = a.data();
  for (size_t i = 0; i < a.size(); ++i) acc += p[i];
  return acc;
}

double Mean(const Matrix& a) {
  HOSR_CHECK(a.size() > 0);
  return Sum(a) / static_cast<double>(a.size());
}

double MaxAbs(const Matrix& a) {
  double best = 0.0;
  const float* p = a.data();
  for (size_t i = 0; i < a.size(); ++i) {
    best = std::max(best, static_cast<double>(std::fabs(p[i])));
  }
  return best;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  double best = 0.0;
  const float* ap = a.data();
  const float* bp = b.data();
  for (size_t i = 0; i < a.size(); ++i) {
    best = std::max(best, static_cast<double>(std::fabs(ap[i] - bp[i])));
  }
  return best;
}

bool AllClose(const Matrix& a, const Matrix& b, double tol) {
  if (!a.SameShape(b)) return false;
  return MaxAbsDiff(a, b) <= tol;
}

}  // namespace hosr::tensor
