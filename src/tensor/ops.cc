#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "kernels/kernels.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace hosr::tensor {

namespace {

void CheckSameShape(const Matrix& a, const Matrix& b) {
  HOSR_CHECK(a.SameShape(b)) << a.rows() << "x" << a.cols() << " vs "
                             << b.rows() << "x" << b.cols();
}

}  // namespace

void Gemm(const Matrix& a, bool transpose_a, const Matrix& b, bool transpose_b,
          float alpha, float beta, Matrix* out) {
  const size_t m = transpose_a ? a.cols() : a.rows();
  const size_t k = transpose_a ? a.rows() : a.cols();
  const size_t k2 = transpose_b ? b.cols() : b.rows();
  const size_t n = transpose_b ? b.rows() : b.cols();
  HOSR_CHECK(k == k2) << "inner dims " << k << " vs " << k2;
  HOSR_CHECK(out->rows() == m && out->cols() == n)
      << "out " << out->rows() << "x" << out->cols() << " want " << m << "x"
      << n;
  HOSR_CHECK(out != &a && out != &b) << "Gemm does not support aliasing";

  HOSR_COUNTER("kernels/gemm_flops").Increment(2 * m * n * k);
  const kernels::KernelTable& kern = kernels::Active();

  // i-k-j loop order keeps the inner loop streaming over contiguous rows of
  // the (possibly logically transposed) operands: pairs of rank-1 row
  // updates through the axpy2 microkernel. For transposed B we materialize
  // nothing: B^T(kk, j) = B(j, kk) is strided, so the j-major inner loop
  // reduces with the dot microkernel instead (or a scalar accumulator when
  // A is also transposed and its column walk is strided too).
  util::ParallelFor(
      0, m,
      [&](size_t row_begin, size_t row_end) {
        for (size_t i = row_begin; i < row_end; ++i) {
          float* out_row = out->row(i);
          if (beta == 0.0f) {
            std::fill(out_row, out_row + n, 0.0f);
          } else if (beta != 1.0f) {
            kern.scale(n, beta, out_row);
          }
          if (!transpose_b) {
            size_t kk = 0;
            for (; kk + 2 <= k; kk += 2) {
              const float a0 = transpose_a ? a(kk, i) : a(i, kk);
              const float a1 = transpose_a ? a(kk + 1, i) : a(i, kk + 1);
              kern.axpy2(n, alpha * a0, b.row(kk), alpha * a1, b.row(kk + 1),
                         out_row);
            }
            if (kk < k) {
              const float a_ik = transpose_a ? a(kk, i) : a(i, kk);
              kern.axpy(n, alpha * a_ik, b.row(kk), out_row);
            }
          } else if (!transpose_a) {
            const float* a_row = a.row(i);
            for (size_t j = 0; j < n; ++j) {
              out_row[j] += alpha * kern.dot(k, a_row, b.row(j));
            }
          } else {
            for (size_t j = 0; j < n; ++j) {
              const float* b_row = b.row(j);
              float acc = 0.0f;
              for (size_t kk = 0; kk < k; ++kk) {
                acc += a(kk, i) * b_row[kk];
              }
              out_row[j] += alpha * acc;
            }
          }
        }
      },
      util::GrainFor(n * k));
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  Gemm(a, false, b, false, 1.0f, 0.0f, &out);
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  Matrix out = a;
  kernels::Active().axpy(out.size(), 1.0f, b.data(), out.data());
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  Matrix out = a;
  kernels::Active().axpy(out.size(), -1.0f, b.data(), out.data());
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  Matrix out = a;
  const float* bp = b.data();
  float* op = out.data();
  for (size_t i = 0; i < out.size(); ++i) op[i] *= bp[i];
  return out;
}

Matrix Scale(const Matrix& a, float s) {
  Matrix out = a;
  kernels::Active().scale(out.size(), s, out.data());
  return out;
}

void Axpy(float alpha, const Matrix& b, Matrix* a) {
  CheckSameShape(*a, b);
  HOSR_COUNTER("kernels/axpy_flops").Increment(2 * a->size());
  kernels::Active().axpy(a->size(), alpha, b.data(), a->data());
}

void Apply(Matrix* m, float (*fn)(float)) {
  float* p = m->data();
  const size_t n = m->size();
  util::ParallelFor(
      0, n,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) p[i] = fn(p[i]);
      },
      util::GrainFor(1));
}

Matrix Tanh(const Matrix& a) {
  Matrix out = a;
  Apply(&out, [](float x) { return std::tanh(x); });
  return out;
}

Matrix Relu(const Matrix& a) {
  Matrix out = a;
  Apply(&out, [](float x) { return x > 0.0f ? x : 0.0f; });
  return out;
}

Matrix Sigmoid(const Matrix& a) {
  Matrix out = a;
  Apply(&out, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
  return out;
}

Matrix RowDot(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  HOSR_COUNTER("kernels/dot_flops").Increment(2 * a.size());
  const kernels::KernelTable& kern = kernels::Active();
  Matrix out(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    out(r, 0) = kern.dot(a.cols(), a.row(r), b.row(r));
  }
  return out;
}

Matrix RowSum(const Matrix& a) {
  Matrix out(a.rows(), 1);
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* ar = a.row(r);
    float acc = 0.0f;
    for (size_t c = 0; c < a.cols(); ++c) acc += ar[c];
    out(r, 0) = acc;
  }
  return out;
}

Matrix ColSum(const Matrix& a) {
  Matrix out(1, a.cols());
  float* op = out.data();
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* ar = a.row(r);
    for (size_t c = 0; c < a.cols(); ++c) op[c] += ar[c];
  }
  return out;
}

Matrix RowSoftmax(const Matrix& a) {
  Matrix out(a.rows(), a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* ar = a.row(r);
    float* orow = out.row(r);
    float max_val = ar[0];
    for (size_t c = 1; c < a.cols(); ++c) max_val = std::max(max_val, ar[c]);
    float denom = 0.0f;
    for (size_t c = 0; c < a.cols(); ++c) {
      orow[c] = std::exp(ar[c] - max_val);
      denom += orow[c];
    }
    const float inv = 1.0f / denom;
    for (size_t c = 0; c < a.cols(); ++c) orow[c] *= inv;
  }
  return out;
}

Matrix BroadcastColMul(const Matrix& a, const Matrix& scale) {
  HOSR_CHECK(scale.rows() == a.rows() && scale.cols() == 1)
      << "scale must be (" << a.rows() << " x 1), got " << scale.rows() << "x"
      << scale.cols();
  Matrix out = a;
  const kernels::KernelTable& kern = kernels::Active();
  for (size_t r = 0; r < a.rows(); ++r) {
    kern.scale(a.cols(), scale(r, 0), out.row(r));
  }
  return out;
}

Matrix GatherRows(const Matrix& a, const std::vector<uint32_t>& indices) {
  Matrix out(indices.size(), a.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    HOSR_CHECK(indices[i] < a.rows()) << indices[i] << " >= " << a.rows();
    std::copy(a.row(indices[i]), a.row(indices[i]) + a.cols(), out.row(i));
  }
  return out;
}

void ScatterAddRows(const Matrix& a, const std::vector<uint32_t>& indices,
                    Matrix* out) {
  HOSR_CHECK(indices.size() == a.rows());
  HOSR_CHECK(out->cols() == a.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    HOSR_CHECK(indices[i] < out->rows());
    const float* src = a.row(i);
    float* dst = out->row(indices[i]);
    for (size_t c = 0; c < a.cols(); ++c) dst[c] += src[c];
  }
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (size_t r = 0; r < a.rows(); ++r) {
    const float* ar = a.row(r);
    for (size_t c = 0; c < a.cols(); ++c) out(c, r) = ar[c];
  }
  return out;
}

double SquaredNorm(const Matrix& a) {
  double acc = 0.0;
  const float* p = a.data();
  for (size_t i = 0; i < a.size(); ++i) acc += static_cast<double>(p[i]) * p[i];
  return acc;
}

double Sum(const Matrix& a) {
  double acc = 0.0;
  const float* p = a.data();
  for (size_t i = 0; i < a.size(); ++i) acc += p[i];
  return acc;
}

double Mean(const Matrix& a) {
  HOSR_CHECK(a.size() > 0);
  return Sum(a) / static_cast<double>(a.size());
}

double MaxAbs(const Matrix& a) {
  double best = 0.0;
  const float* p = a.data();
  for (size_t i = 0; i < a.size(); ++i) {
    best = std::max(best, static_cast<double>(std::fabs(p[i])));
  }
  return best;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  double best = 0.0;
  const float* ap = a.data();
  const float* bp = b.data();
  for (size_t i = 0; i < a.size(); ++i) {
    best = std::max(best, static_cast<double>(std::fabs(ap[i] - bp[i])));
  }
  return best;
}

bool AllClose(const Matrix& a, const Matrix& b, double tol) {
  if (!a.SameShape(b)) return false;
  return MaxAbsDiff(a, b) <= tol;
}

}  // namespace hosr::tensor
