#ifndef HOSR_TENSOR_MATRIX_H_
#define HOSR_TENSOR_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/logging.h"

namespace hosr::tensor {

// Dense row-major float matrix. This is the single tensor type the entire
// library is built on: embeddings are (n x d) matrices, vectors are (1 x d)
// or (n x 1) matrices. Copyable (deep copy) and movable.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, float fill_value = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill_value) {}

  // Builds from nested init-list-like rows; all rows must be equally long.
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float* row(size_t r) {
    HOSR_CHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const float* row(size_t r) const {
    HOSR_CHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  float& at(size_t r, size_t c) {
    HOSR_CHECK(r < rows_ && c < cols_) << r << "," << c << " in " << rows_
                                       << "x" << cols_;
    return data_[r * cols_ + c];
  }
  float at(size_t r, size_t c) const {
    HOSR_CHECK(r < rows_ && c < cols_) << r << "," << c << " in " << rows_
                                       << "x" << cols_;
    return data_[r * cols_ + c];
  }

  // Unchecked fast path for inner loops.
  float& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  void Fill(float value);
  void SetZero() { Fill(0.0f); }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // Debug rendering, e.g. "[[1, 2], [3, 4]]" (rows capped for large mats).
  std::string ToString(size_t max_rows = 8) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

}  // namespace hosr::tensor

#endif  // HOSR_TENSOR_MATRIX_H_
