#ifndef HOSR_TENSOR_OPS_H_
#define HOSR_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace hosr::tensor {

// Dense kernels over Matrix. Shape mismatches are programming errors and
// abort via HOSR_CHECK (callers validate user input at API boundaries).
// GEMM and the larger element-wise kernels are threaded via util::ParallelFor.

// out = alpha * op(a) * op(b) + beta * out, where op transposes when the
// corresponding flag is set. `out` must be pre-sized to the result shape
// (and is overwritten entirely when beta == 0).
void Gemm(const Matrix& a, bool transpose_a, const Matrix& b, bool transpose_b,
          float alpha, float beta, Matrix* out);

// Convenience: returns a * b.
Matrix MatMul(const Matrix& a, const Matrix& b);

// Element-wise operations; result shapes match inputs.
Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);
Matrix Hadamard(const Matrix& a, const Matrix& b);
Matrix Scale(const Matrix& a, float s);

// a += alpha * b (BLAS axpy over the whole buffer).
void Axpy(float alpha, const Matrix& b, Matrix* a);

// In-place element-wise map.
void Apply(Matrix* m, float (*fn)(float));

Matrix Tanh(const Matrix& a);
Matrix Relu(const Matrix& a);
Matrix Sigmoid(const Matrix& a);

// Row-wise dot products of equally-shaped (n x d) matrices -> (n x 1).
Matrix RowDot(const Matrix& a, const Matrix& b);

// Sum over each row -> (n x 1); sum over each column -> (1 x d).
Matrix RowSum(const Matrix& a);
Matrix ColSum(const Matrix& a);

// Row-wise softmax of an (n x k) matrix (numerically stable).
Matrix RowSoftmax(const Matrix& a);

// Multiplies each row r of `a` (n x d) by scalar `scale(r, 0)` from (n x 1).
Matrix BroadcastColMul(const Matrix& a, const Matrix& scale);

// Gathers rows: out(i, :) = a(indices[i], :).
Matrix GatherRows(const Matrix& a, const std::vector<uint32_t>& indices);

// Scatter-add: out(indices[i], :) += a(i, :). `out` must be pre-sized.
void ScatterAddRows(const Matrix& a, const std::vector<uint32_t>& indices,
                    Matrix* out);

Matrix Transpose(const Matrix& a);

// Frobenius norm squared, sum, mean, max-abs over all elements.
double SquaredNorm(const Matrix& a);
double Sum(const Matrix& a);
double Mean(const Matrix& a);
double MaxAbs(const Matrix& a);

// Max-abs element difference; matrices must be equal shape.
double MaxAbsDiff(const Matrix& a, const Matrix& b);

// True iff shapes match and all elements differ by at most `tol`.
bool AllClose(const Matrix& a, const Matrix& b, double tol = 1e-5);

}  // namespace hosr::tensor

#endif  // HOSR_TENSOR_OPS_H_
