#include "tensor/init.h"

#include <cmath>

namespace hosr::tensor {

void GaussianInit(Matrix* m, float stddev, util::Rng* rng) {
  float* p = m->data();
  for (size_t i = 0; i < m->size(); ++i) p[i] = rng->Gaussian(0.0f, stddev);
}

void XavierUniformInit(Matrix* m, util::Rng* rng) {
  const float fan_in = static_cast<float>(m->rows());
  const float fan_out = static_cast<float>(m->cols());
  const float a = std::sqrt(6.0f / (fan_in + fan_out));
  UniformInit(m, -a, a, rng);
}

void XavierNormalInit(Matrix* m, util::Rng* rng) {
  const float fan_in = static_cast<float>(m->rows());
  const float fan_out = static_cast<float>(m->cols());
  const float stddev = std::sqrt(2.0f / (fan_in + fan_out));
  GaussianInit(m, stddev, rng);
}

void UniformInit(Matrix* m, float lo, float hi, util::Rng* rng) {
  float* p = m->data();
  const float span = hi - lo;
  for (size_t i = 0; i < m->size(); ++i) {
    p[i] = lo + span * rng->UniformFloat();
  }
}

}  // namespace hosr::tensor
