#include "tensor/matrix.h"

#include <algorithm>

#include "util/string_util.h"

namespace hosr::tensor {

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    HOSR_CHECK(rows[r].size() == m.cols()) << "ragged rows";
    std::copy(rows[r].begin(), rows[r].end(), m.row(r));
  }
  return m;
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::string Matrix::ToString(size_t max_rows) const {
  std::string out = util::StrFormat("Matrix %zux%zu [", rows_, cols_);
  const size_t show = std::min(rows_, max_rows);
  for (size_t r = 0; r < show; ++r) {
    out += r == 0 ? "[" : ", [";
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) out += ", ";
      out += util::StrFormat("%.4g", (*this)(r, c));
    }
    out += "]";
  }
  if (show < rows_) out += ", ...";
  out += "]";
  return out;
}

}  // namespace hosr::tensor
