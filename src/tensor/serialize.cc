#include "tensor/serialize.h"

#include <cstdint>
#include <fstream>

namespace hosr::tensor {

namespace {
constexpr uint32_t kMagic = 0x484f5352;  // "HOSR"
}  // namespace

util::Status WriteMatrix(const Matrix& m, std::ostream* out) {
  const uint32_t magic = kMagic;
  const uint64_t rows = m.rows();
  const uint64_t cols = m.cols();
  out->write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out->write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out->write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out->write(reinterpret_cast<const char*>(m.data()),
             static_cast<std::streamsize>(m.size() * sizeof(float)));
  if (!*out) return util::Status::IoError("matrix write failed");
  return util::Status::Ok();
}

util::StatusOr<Matrix> ReadMatrix(std::istream* in) {
  uint32_t magic = 0;
  uint64_t rows = 0;
  uint64_t cols = 0;
  in->read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!*in) return util::Status::IoError("matrix header read failed");
  if (magic != kMagic) {
    return util::Status::InvalidArgument("bad matrix magic");
  }
  in->read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in->read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!*in) return util::Status::IoError("matrix dims read failed");
  // Sanity bound: refuse absurd allocations from corrupt headers.
  if (rows > (1ULL << 32) || cols > (1ULL << 32) ||
      rows * cols > (1ULL << 34)) {
    return util::Status::InvalidArgument("matrix dims implausibly large");
  }
  Matrix m(static_cast<size_t>(rows), static_cast<size_t>(cols));
  in->read(reinterpret_cast<char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(float)));
  if (!*in) return util::Status::IoError("matrix payload read failed");
  return m;
}

util::Status SaveMatrix(const Matrix& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return util::Status::IoError("cannot open for writing: " + path);
  return WriteMatrix(m, &out);
}

util::StatusOr<Matrix> LoadMatrix(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::IoError("cannot open for reading: " + path);
  return ReadMatrix(&in);
}

}  // namespace hosr::tensor
