#ifndef HOSR_TENSOR_INIT_H_
#define HOSR_TENSOR_INIT_H_

#include "tensor/matrix.h"
#include "util/random.h"

namespace hosr::tensor {

// Parameter initializers. All take an explicit Rng for reproducibility.

// N(0, stddev^2) entries.
void GaussianInit(Matrix* m, float stddev, util::Rng* rng);

// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)),
// fan_in = rows, fan_out = cols. The paper's GCN weight init.
void XavierUniformInit(Matrix* m, util::Rng* rng);

// Xavier/Glorot normal: N(0, 2 / (fan_in + fan_out)).
void XavierNormalInit(Matrix* m, util::Rng* rng);

// U(lo, hi) entries.
void UniformInit(Matrix* m, float lo, float hi, util::Rng* rng);

}  // namespace hosr::tensor

#endif  // HOSR_TENSOR_INIT_H_
