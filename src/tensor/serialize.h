#ifndef HOSR_TENSOR_SERIALIZE_H_
#define HOSR_TENSOR_SERIALIZE_H_

#include <istream>
#include <ostream>
#include <string>

#include "tensor/matrix.h"
#include "util/statusor.h"

namespace hosr::tensor {

// Binary matrix (de)serialization: magic, dims, raw float payload.
// Used to checkpoint trained embeddings.

util::Status WriteMatrix(const Matrix& m, std::ostream* out);
util::StatusOr<Matrix> ReadMatrix(std::istream* in);

util::Status SaveMatrix(const Matrix& m, const std::string& path);
util::StatusOr<Matrix> LoadMatrix(const std::string& path);

}  // namespace hosr::tensor

#endif  // HOSR_TENSOR_SERIALIZE_H_
