#!/bin/bash
# Runs every bench binary, echoing a header per binary.
#
# Each bench also dumps its metrics registry to bench_metrics/<name>.json
# (a perf-trajectory artifact for comparing runs across PRs); the script
# fails loudly if any dump is missing or is not parseable JSON.
set -u

METRICS_DIR="${METRICS_DIR:-bench_metrics}"
mkdir -p "$METRICS_DIR"

status=0
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ] && [[ "$b" != *.a ]]; then
    name=$(basename "$b")
    metrics_file="$METRICS_DIR/$name.json"
    echo "########## $name ##########"
    "$b" "$@" --metrics_out="$metrics_file" 2>&1
    echo
    if ! python3 -m json.tool "$metrics_file" > /dev/null; then
      echo "ERROR: $metrics_file is missing or not valid JSON" >&2
      status=1
    fi
  fi
done
exit $status
