#!/bin/bash
# Runs every bench binary, echoing a header per binary.
#
# Each bench also dumps its metrics registry to bench_metrics/<name>.json
# (a perf-trajectory artifact for comparing runs across PRs); the script
# fails loudly if any dump is missing or is not parseable JSON.
#
# Opt-in regression gate: pass --baseline_dir=<old bench_metrics> to diff
# this run against a previous one with tools/bench_diff after all benches
# finish — the script then exits non-zero if any shared gauge regressed
# beyond --threshold_pct (default 10). Both flags are consumed here; all
# other arguments are forwarded to every bench binary.
#
#   ./run_benches.sh                                   # just run + dump
#   METRICS_DIR=new ./run_benches.sh --baseline_dir=bench_metrics_main \
#                                    --threshold_pct=5  # gated run
set -u

METRICS_DIR="${METRICS_DIR:-bench_metrics}"
mkdir -p "$METRICS_DIR"

BASELINE_DIR=""
THRESHOLD_PCT=10
bench_args=()
for arg in "$@"; do
  case "$arg" in
    --baseline_dir=*) BASELINE_DIR="${arg#*=}" ;;
    --threshold_pct=*) THRESHOLD_PCT="${arg#*=}" ;;
    *) bench_args+=("$arg") ;;
  esac
done

status=0
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ] && [[ "$b" != *.a ]]; then
    name=$(basename "$b")
    metrics_file="$METRICS_DIR/$name.json"
    echo "########## $name ##########"
    "$b" ${bench_args[@]+"${bench_args[@]}"} --metrics_out="$metrics_file" 2>&1
    echo
    if ! python3 -m json.tool "$metrics_file" > /dev/null; then
      echo "ERROR: $metrics_file is missing or not valid JSON" >&2
      status=1
    fi
  fi
done

# Continuous-profiling parity gate (docs/OBSERVABILITY.md "Continuous
# profiling"): the serve_profile bench must show <5% replay overhead with
# the profiler + timeseries recorder armed. profile_smoke covers the
# correctness side; this keeps the cost side honest on every bench run.
if [ -f "$METRICS_DIR/serve_profile.json" ]; then
  if ! python3 - "$METRICS_DIR/serve_profile.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    metrics = json.load(f)["metrics"]
penalty = metrics["bench/serve_profile/profile_overhead_penalty"]["value"]
assert penalty < 1.05, \
    "profiler overhead penalty %.3f breaches the 5%% parity gate" % penalty
print("serve_profile parity gate OK (penalty %.3f)" % penalty)
EOF
  then
    echo "ERROR: serve_profile <5% overhead parity gate failed" >&2
    status=1
  fi
fi

if [ -n "$BASELINE_DIR" ]; then
  if [ ! -x build/tools/bench_diff ]; then
    echo "ERROR: --baseline_dir given but build/tools/bench_diff not built" >&2
    exit 1
  fi
  echo "########## bench_diff vs $BASELINE_DIR ##########"
  if ! build/tools/bench_diff --baseline="$BASELINE_DIR" \
      --candidate="$METRICS_DIR" --threshold_pct="$THRESHOLD_PCT"; then
    status=1
  fi
fi
exit $status
