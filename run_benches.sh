#!/bin/bash
# Runs every bench binary, echoing a header per binary.
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ] && [[ "$b" != *.a ]]; then
    echo "########## $(basename "$b") ##########"
    "$b" "$@" 2>&1
    echo
  fi
done
