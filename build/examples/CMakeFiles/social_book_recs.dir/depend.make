# Empty dependencies file for social_book_recs.
# This may be replaced when dependencies are built.
