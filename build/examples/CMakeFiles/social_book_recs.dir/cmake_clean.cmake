file(REMOVE_RECURSE
  "CMakeFiles/social_book_recs.dir/social_book_recs.cpp.o"
  "CMakeFiles/social_book_recs.dir/social_book_recs.cpp.o.d"
  "social_book_recs"
  "social_book_recs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_book_recs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
