# Empty dependencies file for attention_introspection.
# This may be replaced when dependencies are built.
