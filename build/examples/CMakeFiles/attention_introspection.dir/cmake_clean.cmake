file(REMOVE_RECURSE
  "CMakeFiles/attention_introspection.dir/attention_introspection.cpp.o"
  "CMakeFiles/attention_introspection.dir/attention_introspection.cpp.o.d"
  "attention_introspection"
  "attention_introspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attention_introspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
