# Empty compiler generated dependencies file for local_business_recs.
# This may be replaced when dependencies are built.
