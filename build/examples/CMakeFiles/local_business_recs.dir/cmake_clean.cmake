file(REMOVE_RECURSE
  "CMakeFiles/local_business_recs.dir/local_business_recs.cpp.o"
  "CMakeFiles/local_business_recs.dir/local_business_recs.cpp.o.d"
  "local_business_recs"
  "local_business_recs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_business_recs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
