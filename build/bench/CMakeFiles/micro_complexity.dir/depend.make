# Empty dependencies file for micro_complexity.
# This may be replaced when dependencies are built.
