file(REMOVE_RECURSE
  "CMakeFiles/micro_complexity.dir/micro_complexity.cc.o"
  "CMakeFiles/micro_complexity.dir/micro_complexity.cc.o.d"
  "micro_complexity"
  "micro_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
