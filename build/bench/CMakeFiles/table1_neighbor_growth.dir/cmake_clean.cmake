file(REMOVE_RECURSE
  "CMakeFiles/table1_neighbor_growth.dir/table1_neighbor_growth.cc.o"
  "CMakeFiles/table1_neighbor_growth.dir/table1_neighbor_growth.cc.o.d"
  "table1_neighbor_growth"
  "table1_neighbor_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_neighbor_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
