# Empty dependencies file for table4_layer_aggregation.
# This may be replaced when dependencies are built.
