file(REMOVE_RECURSE
  "CMakeFiles/table4_layer_aggregation.dir/table4_layer_aggregation.cc.o"
  "CMakeFiles/table4_layer_aggregation.dir/table4_layer_aggregation.cc.o.d"
  "table4_layer_aggregation"
  "table4_layer_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_layer_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
