# Empty dependencies file for fig6_sparsity_groups.
# This may be replaced when dependencies are built.
