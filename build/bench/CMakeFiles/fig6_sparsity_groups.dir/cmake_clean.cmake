file(REMOVE_RECURSE
  "CMakeFiles/fig6_sparsity_groups.dir/fig6_sparsity_groups.cc.o"
  "CMakeFiles/fig6_sparsity_groups.dir/fig6_sparsity_groups.cc.o.d"
  "fig6_sparsity_groups"
  "fig6_sparsity_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sparsity_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
