file(REMOVE_RECURSE
  "CMakeFiles/fig7_attention_weights.dir/fig7_attention_weights.cc.o"
  "CMakeFiles/fig7_attention_weights.dir/fig7_attention_weights.cc.o.d"
  "fig7_attention_weights"
  "fig7_attention_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_attention_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
