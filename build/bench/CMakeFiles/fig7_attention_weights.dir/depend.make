# Empty dependencies file for fig7_attention_weights.
# This may be replaced when dependencies are built.
