file(REMOVE_RECURSE
  "libhosr_bench_common.a"
)
