# Empty compiler generated dependencies file for hosr_bench_common.
# This may be replaced when dependencies are built.
