file(REMOVE_RECURSE
  "CMakeFiles/hosr_bench_common.dir/common/bench_util.cc.o"
  "CMakeFiles/hosr_bench_common.dir/common/bench_util.cc.o.d"
  "libhosr_bench_common.a"
  "libhosr_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hosr_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
