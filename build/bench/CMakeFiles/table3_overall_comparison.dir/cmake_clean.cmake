file(REMOVE_RECURSE
  "CMakeFiles/table3_overall_comparison.dir/table3_overall_comparison.cc.o"
  "CMakeFiles/table3_overall_comparison.dir/table3_overall_comparison.cc.o.d"
  "table3_overall_comparison"
  "table3_overall_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_overall_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
