# Empty dependencies file for fig8_dropout_effect.
# This may be replaced when dependencies are built.
