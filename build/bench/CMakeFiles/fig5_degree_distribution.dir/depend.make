# Empty dependencies file for fig5_degree_distribution.
# This may be replaced when dependencies are built.
