file(REMOVE_RECURSE
  "CMakeFiles/fig5_degree_distribution.dir/fig5_degree_distribution.cc.o"
  "CMakeFiles/fig5_degree_distribution.dir/fig5_degree_distribution.cc.o.d"
  "fig5_degree_distribution"
  "fig5_degree_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_degree_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
