file(REMOVE_RECURSE
  "libhosr_obs.a"
)
