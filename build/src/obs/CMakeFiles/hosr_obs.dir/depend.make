# Empty dependencies file for hosr_obs.
# This may be replaced when dependencies are built.
