file(REMOVE_RECURSE
  "CMakeFiles/hosr_obs.dir/metrics.cc.o"
  "CMakeFiles/hosr_obs.dir/metrics.cc.o.d"
  "CMakeFiles/hosr_obs.dir/reporter.cc.o"
  "CMakeFiles/hosr_obs.dir/reporter.cc.o.d"
  "CMakeFiles/hosr_obs.dir/trace.cc.o"
  "CMakeFiles/hosr_obs.dir/trace.cc.o.d"
  "libhosr_obs.a"
  "libhosr_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hosr_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
