# Empty dependencies file for hosr_eval.
# This may be replaced when dependencies are built.
