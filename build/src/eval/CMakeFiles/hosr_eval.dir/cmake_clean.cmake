file(REMOVE_RECURSE
  "CMakeFiles/hosr_eval.dir/evaluator.cc.o"
  "CMakeFiles/hosr_eval.dir/evaluator.cc.o.d"
  "CMakeFiles/hosr_eval.dir/metrics.cc.o"
  "CMakeFiles/hosr_eval.dir/metrics.cc.o.d"
  "CMakeFiles/hosr_eval.dir/significance.cc.o"
  "CMakeFiles/hosr_eval.dir/significance.cc.o.d"
  "libhosr_eval.a"
  "libhosr_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hosr_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
