file(REMOVE_RECURSE
  "libhosr_eval.a"
)
