
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/evaluator.cc" "src/eval/CMakeFiles/hosr_eval.dir/evaluator.cc.o" "gcc" "src/eval/CMakeFiles/hosr_eval.dir/evaluator.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/hosr_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/hosr_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/significance.cc" "src/eval/CMakeFiles/hosr_eval.dir/significance.cc.o" "gcc" "src/eval/CMakeFiles/hosr_eval.dir/significance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/hosr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/hosr_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hosr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hosr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hosr_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
