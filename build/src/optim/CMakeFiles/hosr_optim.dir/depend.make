# Empty dependencies file for hosr_optim.
# This may be replaced when dependencies are built.
