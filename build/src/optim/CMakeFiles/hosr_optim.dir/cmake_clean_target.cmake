file(REMOVE_RECURSE
  "libhosr_optim.a"
)
