file(REMOVE_RECURSE
  "CMakeFiles/hosr_optim.dir/optimizer.cc.o"
  "CMakeFiles/hosr_optim.dir/optimizer.cc.o.d"
  "libhosr_optim.a"
  "libhosr_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hosr_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
