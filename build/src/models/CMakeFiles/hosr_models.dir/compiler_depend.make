# Empty compiler generated dependencies file for hosr_models.
# This may be replaced when dependencies are built.
