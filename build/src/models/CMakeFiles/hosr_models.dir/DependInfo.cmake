
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/bpr_mf.cc" "src/models/CMakeFiles/hosr_models.dir/bpr_mf.cc.o" "gcc" "src/models/CMakeFiles/hosr_models.dir/bpr_mf.cc.o.d"
  "/root/repo/src/models/deepinf.cc" "src/models/CMakeFiles/hosr_models.dir/deepinf.cc.o" "gcc" "src/models/CMakeFiles/hosr_models.dir/deepinf.cc.o.d"
  "/root/repo/src/models/early_stopping.cc" "src/models/CMakeFiles/hosr_models.dir/early_stopping.cc.o" "gcc" "src/models/CMakeFiles/hosr_models.dir/early_stopping.cc.o.d"
  "/root/repo/src/models/heuristics.cc" "src/models/CMakeFiles/hosr_models.dir/heuristics.cc.o" "gcc" "src/models/CMakeFiles/hosr_models.dir/heuristics.cc.o.d"
  "/root/repo/src/models/if_bpr.cc" "src/models/CMakeFiles/hosr_models.dir/if_bpr.cc.o" "gcc" "src/models/CMakeFiles/hosr_models.dir/if_bpr.cc.o.d"
  "/root/repo/src/models/model.cc" "src/models/CMakeFiles/hosr_models.dir/model.cc.o" "gcc" "src/models/CMakeFiles/hosr_models.dir/model.cc.o.d"
  "/root/repo/src/models/ncf.cc" "src/models/CMakeFiles/hosr_models.dir/ncf.cc.o" "gcc" "src/models/CMakeFiles/hosr_models.dir/ncf.cc.o.d"
  "/root/repo/src/models/nscr.cc" "src/models/CMakeFiles/hosr_models.dir/nscr.cc.o" "gcc" "src/models/CMakeFiles/hosr_models.dir/nscr.cc.o.d"
  "/root/repo/src/models/trainer.cc" "src/models/CMakeFiles/hosr_models.dir/trainer.cc.o" "gcc" "src/models/CMakeFiles/hosr_models.dir/trainer.cc.o.d"
  "/root/repo/src/models/trust_svd.cc" "src/models/CMakeFiles/hosr_models.dir/trust_svd.cc.o" "gcc" "src/models/CMakeFiles/hosr_models.dir/trust_svd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/hosr_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hosr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/hosr_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hosr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/hosr_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/hosr_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hosr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hosr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
