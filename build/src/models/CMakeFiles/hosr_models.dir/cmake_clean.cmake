file(REMOVE_RECURSE
  "CMakeFiles/hosr_models.dir/bpr_mf.cc.o"
  "CMakeFiles/hosr_models.dir/bpr_mf.cc.o.d"
  "CMakeFiles/hosr_models.dir/deepinf.cc.o"
  "CMakeFiles/hosr_models.dir/deepinf.cc.o.d"
  "CMakeFiles/hosr_models.dir/early_stopping.cc.o"
  "CMakeFiles/hosr_models.dir/early_stopping.cc.o.d"
  "CMakeFiles/hosr_models.dir/heuristics.cc.o"
  "CMakeFiles/hosr_models.dir/heuristics.cc.o.d"
  "CMakeFiles/hosr_models.dir/if_bpr.cc.o"
  "CMakeFiles/hosr_models.dir/if_bpr.cc.o.d"
  "CMakeFiles/hosr_models.dir/model.cc.o"
  "CMakeFiles/hosr_models.dir/model.cc.o.d"
  "CMakeFiles/hosr_models.dir/ncf.cc.o"
  "CMakeFiles/hosr_models.dir/ncf.cc.o.d"
  "CMakeFiles/hosr_models.dir/nscr.cc.o"
  "CMakeFiles/hosr_models.dir/nscr.cc.o.d"
  "CMakeFiles/hosr_models.dir/trainer.cc.o"
  "CMakeFiles/hosr_models.dir/trainer.cc.o.d"
  "CMakeFiles/hosr_models.dir/trust_svd.cc.o"
  "CMakeFiles/hosr_models.dir/trust_svd.cc.o.d"
  "libhosr_models.a"
  "libhosr_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hosr_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
