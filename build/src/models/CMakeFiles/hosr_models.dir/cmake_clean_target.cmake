file(REMOVE_RECURSE
  "libhosr_models.a"
)
