# Empty dependencies file for hosr_tensor.
# This may be replaced when dependencies are built.
