file(REMOVE_RECURSE
  "CMakeFiles/hosr_tensor.dir/init.cc.o"
  "CMakeFiles/hosr_tensor.dir/init.cc.o.d"
  "CMakeFiles/hosr_tensor.dir/matrix.cc.o"
  "CMakeFiles/hosr_tensor.dir/matrix.cc.o.d"
  "CMakeFiles/hosr_tensor.dir/ops.cc.o"
  "CMakeFiles/hosr_tensor.dir/ops.cc.o.d"
  "CMakeFiles/hosr_tensor.dir/serialize.cc.o"
  "CMakeFiles/hosr_tensor.dir/serialize.cc.o.d"
  "libhosr_tensor.a"
  "libhosr_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hosr_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
