file(REMOVE_RECURSE
  "libhosr_tensor.a"
)
