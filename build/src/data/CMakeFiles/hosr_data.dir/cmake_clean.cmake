file(REMOVE_RECURSE
  "CMakeFiles/hosr_data.dir/dataset.cc.o"
  "CMakeFiles/hosr_data.dir/dataset.cc.o.d"
  "CMakeFiles/hosr_data.dir/interactions.cc.o"
  "CMakeFiles/hosr_data.dir/interactions.cc.o.d"
  "CMakeFiles/hosr_data.dir/io.cc.o"
  "CMakeFiles/hosr_data.dir/io.cc.o.d"
  "CMakeFiles/hosr_data.dir/preprocess.cc.o"
  "CMakeFiles/hosr_data.dir/preprocess.cc.o.d"
  "CMakeFiles/hosr_data.dir/sampler.cc.o"
  "CMakeFiles/hosr_data.dir/sampler.cc.o.d"
  "CMakeFiles/hosr_data.dir/synthetic.cc.o"
  "CMakeFiles/hosr_data.dir/synthetic.cc.o.d"
  "libhosr_data.a"
  "libhosr_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hosr_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
