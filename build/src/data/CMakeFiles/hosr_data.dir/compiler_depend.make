# Empty compiler generated dependencies file for hosr_data.
# This may be replaced when dependencies are built.
