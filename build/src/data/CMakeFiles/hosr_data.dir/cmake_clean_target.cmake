file(REMOVE_RECURSE
  "libhosr_data.a"
)
