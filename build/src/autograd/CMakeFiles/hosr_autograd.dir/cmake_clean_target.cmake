file(REMOVE_RECURSE
  "libhosr_autograd.a"
)
