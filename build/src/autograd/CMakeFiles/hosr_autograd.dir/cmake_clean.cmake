file(REMOVE_RECURSE
  "CMakeFiles/hosr_autograd.dir/checkpoint.cc.o"
  "CMakeFiles/hosr_autograd.dir/checkpoint.cc.o.d"
  "CMakeFiles/hosr_autograd.dir/gradcheck.cc.o"
  "CMakeFiles/hosr_autograd.dir/gradcheck.cc.o.d"
  "CMakeFiles/hosr_autograd.dir/param.cc.o"
  "CMakeFiles/hosr_autograd.dir/param.cc.o.d"
  "CMakeFiles/hosr_autograd.dir/tape.cc.o"
  "CMakeFiles/hosr_autograd.dir/tape.cc.o.d"
  "libhosr_autograd.a"
  "libhosr_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hosr_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
