# Empty dependencies file for hosr_autograd.
# This may be replaced when dependencies are built.
