
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autograd/checkpoint.cc" "src/autograd/CMakeFiles/hosr_autograd.dir/checkpoint.cc.o" "gcc" "src/autograd/CMakeFiles/hosr_autograd.dir/checkpoint.cc.o.d"
  "/root/repo/src/autograd/gradcheck.cc" "src/autograd/CMakeFiles/hosr_autograd.dir/gradcheck.cc.o" "gcc" "src/autograd/CMakeFiles/hosr_autograd.dir/gradcheck.cc.o.d"
  "/root/repo/src/autograd/param.cc" "src/autograd/CMakeFiles/hosr_autograd.dir/param.cc.o" "gcc" "src/autograd/CMakeFiles/hosr_autograd.dir/param.cc.o.d"
  "/root/repo/src/autograd/tape.cc" "src/autograd/CMakeFiles/hosr_autograd.dir/tape.cc.o" "gcc" "src/autograd/CMakeFiles/hosr_autograd.dir/tape.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/hosr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hosr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hosr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/hosr_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
