# Empty dependencies file for hosr_core.
# This may be replaced when dependencies are built.
