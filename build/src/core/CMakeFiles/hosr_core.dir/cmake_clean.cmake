file(REMOVE_RECURSE
  "CMakeFiles/hosr_core.dir/hosr.cc.o"
  "CMakeFiles/hosr_core.dir/hosr.cc.o.d"
  "CMakeFiles/hosr_core.dir/hosr_gat.cc.o"
  "CMakeFiles/hosr_core.dir/hosr_gat.cc.o.d"
  "CMakeFiles/hosr_core.dir/hosr_joint.cc.o"
  "CMakeFiles/hosr_core.dir/hosr_joint.cc.o.d"
  "CMakeFiles/hosr_core.dir/model_zoo.cc.o"
  "CMakeFiles/hosr_core.dir/model_zoo.cc.o.d"
  "libhosr_core.a"
  "libhosr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hosr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
