file(REMOVE_RECURSE
  "libhosr_core.a"
)
