file(REMOVE_RECURSE
  "CMakeFiles/hosr_graph.dir/csr.cc.o"
  "CMakeFiles/hosr_graph.dir/csr.cc.o.d"
  "CMakeFiles/hosr_graph.dir/laplacian.cc.o"
  "CMakeFiles/hosr_graph.dir/laplacian.cc.o.d"
  "CMakeFiles/hosr_graph.dir/sampling.cc.o"
  "CMakeFiles/hosr_graph.dir/sampling.cc.o.d"
  "CMakeFiles/hosr_graph.dir/social_graph.cc.o"
  "CMakeFiles/hosr_graph.dir/social_graph.cc.o.d"
  "CMakeFiles/hosr_graph.dir/spmm.cc.o"
  "CMakeFiles/hosr_graph.dir/spmm.cc.o.d"
  "CMakeFiles/hosr_graph.dir/stats.cc.o"
  "CMakeFiles/hosr_graph.dir/stats.cc.o.d"
  "libhosr_graph.a"
  "libhosr_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hosr_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
