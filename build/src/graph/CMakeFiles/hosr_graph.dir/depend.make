# Empty dependencies file for hosr_graph.
# This may be replaced when dependencies are built.
