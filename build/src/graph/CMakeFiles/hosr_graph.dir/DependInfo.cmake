
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/csr.cc" "src/graph/CMakeFiles/hosr_graph.dir/csr.cc.o" "gcc" "src/graph/CMakeFiles/hosr_graph.dir/csr.cc.o.d"
  "/root/repo/src/graph/laplacian.cc" "src/graph/CMakeFiles/hosr_graph.dir/laplacian.cc.o" "gcc" "src/graph/CMakeFiles/hosr_graph.dir/laplacian.cc.o.d"
  "/root/repo/src/graph/sampling.cc" "src/graph/CMakeFiles/hosr_graph.dir/sampling.cc.o" "gcc" "src/graph/CMakeFiles/hosr_graph.dir/sampling.cc.o.d"
  "/root/repo/src/graph/social_graph.cc" "src/graph/CMakeFiles/hosr_graph.dir/social_graph.cc.o" "gcc" "src/graph/CMakeFiles/hosr_graph.dir/social_graph.cc.o.d"
  "/root/repo/src/graph/spmm.cc" "src/graph/CMakeFiles/hosr_graph.dir/spmm.cc.o" "gcc" "src/graph/CMakeFiles/hosr_graph.dir/spmm.cc.o.d"
  "/root/repo/src/graph/stats.cc" "src/graph/CMakeFiles/hosr_graph.dir/stats.cc.o" "gcc" "src/graph/CMakeFiles/hosr_graph.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/obs/CMakeFiles/hosr_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hosr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hosr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
