file(REMOVE_RECURSE
  "libhosr_graph.a"
)
