# Empty dependencies file for hosr_util.
# This may be replaced when dependencies are built.
