file(REMOVE_RECURSE
  "libhosr_util.a"
)
