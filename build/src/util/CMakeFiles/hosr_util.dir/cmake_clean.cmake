file(REMOVE_RECURSE
  "CMakeFiles/hosr_util.dir/flags.cc.o"
  "CMakeFiles/hosr_util.dir/flags.cc.o.d"
  "CMakeFiles/hosr_util.dir/logging.cc.o"
  "CMakeFiles/hosr_util.dir/logging.cc.o.d"
  "CMakeFiles/hosr_util.dir/random.cc.o"
  "CMakeFiles/hosr_util.dir/random.cc.o.d"
  "CMakeFiles/hosr_util.dir/status.cc.o"
  "CMakeFiles/hosr_util.dir/status.cc.o.d"
  "CMakeFiles/hosr_util.dir/string_util.cc.o"
  "CMakeFiles/hosr_util.dir/string_util.cc.o.d"
  "CMakeFiles/hosr_util.dir/table.cc.o"
  "CMakeFiles/hosr_util.dir/table.cc.o.d"
  "CMakeFiles/hosr_util.dir/thread_pool.cc.o"
  "CMakeFiles/hosr_util.dir/thread_pool.cc.o.d"
  "libhosr_util.a"
  "libhosr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hosr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
