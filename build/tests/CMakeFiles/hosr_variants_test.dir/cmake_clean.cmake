file(REMOVE_RECURSE
  "CMakeFiles/hosr_variants_test.dir/hosr_variants_test.cc.o"
  "CMakeFiles/hosr_variants_test.dir/hosr_variants_test.cc.o.d"
  "hosr_variants_test"
  "hosr_variants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hosr_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
