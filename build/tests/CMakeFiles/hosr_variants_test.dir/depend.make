# Empty dependencies file for hosr_variants_test.
# This may be replaced when dependencies are built.
