
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/features_test.cc" "tests/CMakeFiles/features_test.dir/features_test.cc.o" "gcc" "tests/CMakeFiles/features_test.dir/features_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hosr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/hosr_models.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/hosr_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hosr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/hosr_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/hosr_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/hosr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hosr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/hosr_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hosr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
