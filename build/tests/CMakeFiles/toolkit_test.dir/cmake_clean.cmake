file(REMOVE_RECURSE
  "CMakeFiles/toolkit_test.dir/toolkit_test.cc.o"
  "CMakeFiles/toolkit_test.dir/toolkit_test.cc.o.d"
  "toolkit_test"
  "toolkit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toolkit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
