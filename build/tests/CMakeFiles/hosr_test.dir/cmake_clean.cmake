file(REMOVE_RECURSE
  "CMakeFiles/hosr_test.dir/hosr_test.cc.o"
  "CMakeFiles/hosr_test.dir/hosr_test.cc.o.d"
  "hosr_test"
  "hosr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hosr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
