# Empty dependencies file for hosr_test.
# This may be replaced when dependencies are built.
