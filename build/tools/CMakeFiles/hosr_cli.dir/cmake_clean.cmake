file(REMOVE_RECURSE
  "CMakeFiles/hosr_cli.dir/hosr_cli.cpp.o"
  "CMakeFiles/hosr_cli.dir/hosr_cli.cpp.o.d"
  "hosr_cli"
  "hosr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hosr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
