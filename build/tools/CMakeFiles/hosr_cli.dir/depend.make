# Empty dependencies file for hosr_cli.
# This may be replaced when dependencies are built.
